// Frequency oracles (paper SII-A). The primary protocol is Optimized Unary
// Encoding (OUE, Wang et al. USENIX Security'17): each user one-hot encodes
// their value over the state domain, keeps the 1-bit with probability 1/2 and
// flips each 0-bit to 1 with probability q = 1/(e^eps + 1). OUE has the
// minimal worst-case estimation variance among unary-encoding protocols,
// Var[f_hat] = 4 e^eps / (n (e^eps - 1)^2)   (Eq. 3),
// which is exactly the quantity the DMU mechanism trades off against
// approximation bias. Generalized Randomized Response (GRR) is provided as a
// secondary oracle for comparison and testing.

#ifndef RETRASYN_LDP_FREQUENCY_ORACLE_H_
#define RETRASYN_LDP_FREQUENCY_ORACLE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace retrasyn {

/// \brief OUE perturbation probabilities for a given privacy budget.
struct OueParams {
  double epsilon = 1.0;
  uint32_t domain_size = 0;

  /// Probability that a 1-bit stays 1.
  static constexpr double p() { return 0.5; }
  /// Probability that a 0-bit is flipped to 1.
  double q() const;
};

/// \brief Worst-case variance of the OUE frequency estimate (paper Eq. 3).
double OueFrequencyVariance(double epsilon, uint64_t n);

/// \brief User-side OUE: encodes and perturbs a single value.
class OueClient {
 public:
  OueClient(double epsilon, uint32_t domain_size);

  double epsilon() const { return params_.epsilon; }
  uint32_t domain_size() const { return params_.domain_size; }

  /// Produces the full perturbed bit vector for `value` (one byte per bit).
  /// Requires value < domain_size.
  std::vector<uint8_t> Perturb(uint32_t value, Rng& rng) const;

  /// Equivalent in distribution to Perturb() but returns only the indices of
  /// the 1-bits: the number of flipped zeros is drawn from
  /// Binomial(domain-1, q) and their positions are sampled uniformly. This is
  /// the representation users would realistically transmit when q is small.
  std::vector<uint32_t> PerturbSparse(uint32_t value, Rng& rng) const;

 private:
  OueParams params_;
};

/// \brief Curator-side OUE aggregation and unbiased estimation.
class OueAggregator {
 public:
  OueAggregator(double epsilon, uint32_t domain_size);

  /// Adds one user's dense report (vector of 0/1 bytes of length domain_size).
  void AddReport(const std::vector<uint8_t>& report);

  /// Adds one user's sparse report (indices of 1-bits).
  void AddSparseReport(const std::vector<uint32_t>& one_bits);

  /// Adds pre-aggregated raw one-counts from \p n users (used by the
  /// distribution-exact aggregate simulator).
  void AddRawCounts(const std::vector<uint64_t>& one_counts, uint64_t n);

  uint64_t num_reports() const { return n_; }

  /// Unbiased frequency estimates f_hat(x) = (c'(x)/n - q) / (p - q).
  /// Entries may be negative or exceed 1; see postprocess.h.
  std::vector<double> EstimateFrequencies() const;

  /// Unbiased count estimates n * f_hat(x).
  std::vector<double> EstimateCounts() const;

 private:
  OueParams params_;
  std::vector<uint64_t> one_counts_;
  uint64_t n_ = 0;
};

/// \brief Generalized randomized response over a domain of size d:
/// report the true value with probability e^eps / (e^eps + d - 1), otherwise a
/// uniformly random other value.
class GrrClient {
 public:
  GrrClient(double epsilon, uint32_t domain_size);

  uint32_t Perturb(uint32_t value, Rng& rng) const;

  double keep_probability() const { return p_; }

 private:
  double epsilon_;
  uint32_t domain_size_;
  double p_;
};

class GrrAggregator {
 public:
  GrrAggregator(double epsilon, uint32_t domain_size);

  void AddReport(uint32_t value);

  uint64_t num_reports() const { return n_; }

  std::vector<double> EstimateFrequencies() const;

 private:
  double epsilon_;
  uint32_t domain_size_;
  std::vector<uint64_t> counts_;
  uint64_t n_ = 0;
};

/// \brief Variance of the GRR frequency estimate (for oracle selection).
double GrrFrequencyVariance(double epsilon, uint32_t domain_size, uint64_t n);

/// \brief Post-processing for noisy frequency vectors (Thm. 2 keeps this
/// privacy-free).
enum class Postprocess {
  kNone,     ///< keep raw unbiased estimates (may be negative)
  kClip,     ///< clamp negatives to zero
  kNormSub,  ///< iterative norm-sub: non-negative and sums to the target mass
};

/// \brief Applies \p mode in place. For kNormSub, \p target_mass is the mass
/// the result should sum to (1.0 for a frequency distribution).
void ApplyPostprocess(Postprocess mode, std::vector<double>& freqs,
                      double target_mass = 1.0);

}  // namespace retrasyn

#endif  // RETRASYN_LDP_FREQUENCY_ORACLE_H_
