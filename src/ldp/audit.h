// Empirical LDP auditing: machinery to *verify* (not just assume) that the
// deployed perturbation satisfies its epsilon-LDP claim (Def. 1).
//
// For OUE the worst-case likelihood ratio between two neighboring inputs
// x1 != x2 is attained by an output whose x1-bit is 1 and x2-bit is 0:
//
//   log P[V | x1] - log P[V | x2] = ln(p/q) + ln((1-q)/(1-p))
//                                 = ln(0.5/q) + ln((1-q)/0.5)  =  eps,
//
// with p = 1/2, q = 1/(e^eps + 1) — i.e. OUE is *tight*. The audit estimates
// per-bit response probabilities from repeated perturbations of two fixed
// inputs and reports the empirical worst-case log ratio together with the
// analytic bound, in the spirit of statistical DP-verification tooling. A
// correct implementation's estimate converges to eps (never materially
// above); a buggy perturbation (wrong flip probability, bit reuse, RNG
// correlation across bits) shows up as an excess.

#ifndef RETRASYN_LDP_AUDIT_H_
#define RETRASYN_LDP_AUDIT_H_

#include <cstdint>

#include "common/rng.h"

namespace retrasyn {

struct LdpAuditResult {
  /// Empirical worst-case per-output-bit-pair log likelihood ratio.
  double empirical_log_ratio = 0.0;
  /// Analytic bound (= eps for OUE).
  double analytic_bound = 0.0;
  /// Standard error of the empirical estimate (delta-method, worst pair).
  double standard_error = 0.0;
  uint64_t trials = 0;

  /// True when the empirical ratio is within \p z standard errors of the
  /// bound (the mechanism neither leaks more than claimed nor wastes
  /// budget).
  bool ConsistentWithBound(double z = 4.0) const {
    return empirical_log_ratio <= analytic_bound + z * standard_error;
  }
};

/// \brief Analytic worst-case log ratio of the OUE mechanism; equals eps.
double OueAnalyticLogRatio(double epsilon);

/// \brief Runs \p trials perturbations of two fixed neighboring inputs
/// through a real OueClient and estimates the worst-case log ratio over all
/// (output-bit-value) events distinguishable between the inputs.
LdpAuditResult AuditOue(double epsilon, uint32_t domain_size, uint64_t trials,
                        Rng& rng);

/// \brief Same audit for the GRR mechanism (analytic bound also eps:
/// p/q = e^eps).
LdpAuditResult AuditGrr(double epsilon, uint32_t domain_size, uint64_t trials,
                        Rng& rng);

}  // namespace retrasyn

#endif  // RETRASYN_LDP_AUDIT_H_
