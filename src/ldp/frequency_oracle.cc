#include "ldp/frequency_oracle.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace retrasyn {

double OueParams::q() const { return 1.0 / (std::exp(epsilon) + 1.0); }

double OueFrequencyVariance(double epsilon, uint64_t n) {
  if (n == 0) return std::numeric_limits<double>::infinity();
  const double e = std::exp(epsilon);
  const double em1 = e - 1.0;
  return 4.0 * e / (static_cast<double>(n) * em1 * em1);
}

OueClient::OueClient(double epsilon, uint32_t domain_size) {
  RETRASYN_CHECK(epsilon > 0.0);
  RETRASYN_CHECK(domain_size > 0);
  params_.epsilon = epsilon;
  params_.domain_size = domain_size;
}

std::vector<uint8_t> OueClient::Perturb(uint32_t value, Rng& rng) const {
  RETRASYN_DCHECK(value < params_.domain_size);
  const double q = params_.q();
  std::vector<uint8_t> bits(params_.domain_size, 0);
  for (uint32_t i = 0; i < params_.domain_size; ++i) {
    const double keep_prob = (i == value) ? OueParams::p() : q;
    bits[i] = rng.Bernoulli(keep_prob) ? 1 : 0;
  }
  return bits;
}

std::vector<uint32_t> OueClient::PerturbSparse(uint32_t value, Rng& rng) const {
  RETRASYN_DCHECK(value < params_.domain_size);
  const double q = params_.q();
  std::vector<uint32_t> ones;
  // The true bit survives with probability p = 1/2.
  const bool true_bit = rng.Bernoulli(OueParams::p());
  // Number of flipped zeros among the domain_size - 1 other positions.
  const uint64_t flips = rng.Binomial(params_.domain_size - 1, q);
  ones.reserve(flips + (true_bit ? 1 : 0));
  if (true_bit) ones.push_back(value);
  // Sample flip positions uniformly among indices != value by drawing from
  // [0, d-1) and skipping over `value`.
  std::vector<uint32_t> positions = rng.SampleWithoutReplacement(
      params_.domain_size - 1, static_cast<uint32_t>(flips));
  for (uint32_t p : positions) {
    ones.push_back(p >= value ? p + 1 : p);
  }
  return ones;
}

OueAggregator::OueAggregator(double epsilon, uint32_t domain_size) {
  RETRASYN_CHECK(epsilon > 0.0);
  RETRASYN_CHECK(domain_size > 0);
  params_.epsilon = epsilon;
  params_.domain_size = domain_size;
  one_counts_.assign(domain_size, 0);
}

void OueAggregator::AddReport(const std::vector<uint8_t>& report) {
  RETRASYN_CHECK(report.size() == one_counts_.size());
  for (uint32_t i = 0; i < report.size(); ++i) {
    one_counts_[i] += report[i] ? 1 : 0;
  }
  ++n_;
}

void OueAggregator::AddSparseReport(const std::vector<uint32_t>& one_bits) {
  for (uint32_t i : one_bits) {
    RETRASYN_DCHECK(i < one_counts_.size());
    ++one_counts_[i];
  }
  ++n_;
}

void OueAggregator::AddRawCounts(const std::vector<uint64_t>& one_counts,
                                 uint64_t n) {
  RETRASYN_CHECK(one_counts.size() == one_counts_.size());
  for (uint32_t i = 0; i < one_counts.size(); ++i) {
    one_counts_[i] += one_counts[i];
  }
  n_ += n;
}

std::vector<double> OueAggregator::EstimateFrequencies() const {
  std::vector<double> freqs(one_counts_.size(), 0.0);
  if (n_ == 0) return freqs;
  const double q = params_.q();
  const double denom = OueParams::p() - q;
  const double n = static_cast<double>(n_);
  for (uint32_t i = 0; i < one_counts_.size(); ++i) {
    freqs[i] = (static_cast<double>(one_counts_[i]) / n - q) / denom;
  }
  return freqs;
}

std::vector<double> OueAggregator::EstimateCounts() const {
  std::vector<double> counts = EstimateFrequencies();
  for (double& c : counts) c *= static_cast<double>(n_);
  return counts;
}

GrrClient::GrrClient(double epsilon, uint32_t domain_size)
    : epsilon_(epsilon), domain_size_(domain_size) {
  RETRASYN_CHECK(epsilon > 0.0);
  RETRASYN_CHECK(domain_size >= 2);
  const double e = std::exp(epsilon_);
  p_ = e / (e + domain_size_ - 1.0);
}

uint32_t GrrClient::Perturb(uint32_t value, Rng& rng) const {
  RETRASYN_DCHECK(value < domain_size_);
  if (rng.Bernoulli(p_)) return value;
  // Uniform over the d-1 other values.
  uint32_t other = static_cast<uint32_t>(rng.UniformInt(
      static_cast<uint64_t>(domain_size_) - 1));
  return other >= value ? other + 1 : other;
}

GrrAggregator::GrrAggregator(double epsilon, uint32_t domain_size)
    : epsilon_(epsilon), domain_size_(domain_size) {
  RETRASYN_CHECK(domain_size >= 2);
  counts_.assign(domain_size, 0);
}

void GrrAggregator::AddReport(uint32_t value) {
  RETRASYN_DCHECK(value < domain_size_);
  ++counts_[value];
  ++n_;
}

std::vector<double> GrrAggregator::EstimateFrequencies() const {
  std::vector<double> freqs(domain_size_, 0.0);
  if (n_ == 0) return freqs;
  const double e = std::exp(epsilon_);
  const double p = e / (e + domain_size_ - 1.0);
  const double q = 1.0 / (e + domain_size_ - 1.0);
  const double n = static_cast<double>(n_);
  for (uint32_t i = 0; i < domain_size_; ++i) {
    freqs[i] = (static_cast<double>(counts_[i]) / n - q) / (p - q);
  }
  return freqs;
}

double GrrFrequencyVariance(double epsilon, uint32_t domain_size, uint64_t n) {
  if (n == 0) return std::numeric_limits<double>::infinity();
  const double e = std::exp(epsilon);
  const double d = static_cast<double>(domain_size);
  // Worst-case (f -> 0) variance of the GRR estimator.
  return (e + d - 2.0) / (static_cast<double>(n) * (e - 1.0) * (e - 1.0));
}

void ApplyPostprocess(Postprocess mode, std::vector<double>& freqs,
                      double target_mass) {
  switch (mode) {
    case Postprocess::kNone:
      return;
    case Postprocess::kClip:
      for (double& f : freqs) f = std::max(f, 0.0);
      return;
    case Postprocess::kNormSub: {
      // Iteratively: clamp negatives to 0, then shift the positive entries by
      // a constant so the total equals target_mass. Converges because the
      // support shrinks monotonically.
      std::vector<char> fixed(freqs.size(), 0);
      for (int iter = 0; iter < 64; ++iter) {
        double mass = 0.0;
        uint32_t free_count = 0;
        for (uint32_t i = 0; i < freqs.size(); ++i) {
          if (!fixed[i]) {
            mass += freqs[i];
            ++free_count;
          }
        }
        if (free_count == 0) break;
        const double delta = (target_mass - mass) / free_count;
        bool any_clamped = false;
        for (uint32_t i = 0; i < freqs.size(); ++i) {
          if (fixed[i]) continue;
          freqs[i] += delta;
          if (freqs[i] < 0.0) {
            freqs[i] = 0.0;
            fixed[i] = 1;
            any_clamped = true;
          }
        }
        if (!any_clamped) break;
      }
      return;
    }
  }
}

}  // namespace retrasyn
