// w-event privacy accounting (paper SII-B, Def. 3).
//
// BudgetLedger tracks the per-timestamp budget spent by a budget-division
// strategy and exposes the sliding-window sum needed both by the allocation
// logic (remaining budget, SIII-E) and by tests asserting that no window of w
// consecutive timestamps ever exceeds the total budget.
//
// For population-division strategies the analogous guarantee is "each user
// reports at most once per window with the full budget"; ReportWindowTracker
// verifies that invariant over user report histories.

#ifndef RETRASYN_LDP_BUDGET_H_
#define RETRASYN_LDP_BUDGET_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

namespace retrasyn {

class BudgetLedger {
 public:
  /// \param window  w, the number of consecutive timestamps protected.
  /// \param total   the overall budget epsilon available per window.
  BudgetLedger(int window, double total);

  int window() const { return window_; }
  double total() const { return total_; }

  /// Records that \p epsilon was spent at timestamp \p t. Timestamps must be
  /// non-decreasing across calls.
  void Record(int64_t t, double epsilon);

  /// Budget spent in the window [t - w + 1, t].
  double SpentInWindow(int64_t t) const;

  /// Budget still available at timestamp \p t:
  /// total - (spend over [t - w + 1, t - 1]).
  double RemainingAt(int64_t t) const;

  /// The largest window-sum observed over the whole recorded history; the
  /// w-event guarantee holds iff this never exceeds total() (+ float slack).
  double MaxWindowSpend() const { return max_window_spend_; }

  // --- Checkpoint state ----------------------------------------------------

  const std::deque<std::pair<int64_t, double>>& spends() const {
    return spends_;
  }
  double window_sum() const { return window_sum_; }
  int64_t last_t() const { return last_t_; }

  void Restore(std::deque<std::pair<int64_t, double>> spends,
               double window_sum, int64_t last_t, double max_window_spend) {
    spends_ = std::move(spends);
    window_sum_ = window_sum;
    last_t_ = last_t;
    max_window_spend_ = max_window_spend;
  }

 private:
  void EvictBefore(int64_t t_min);

  int window_;
  double total_;
  std::deque<std::pair<int64_t, double>> spends_;  // (timestamp, epsilon)
  double window_sum_ = 0.0;                        // sum over current deque
  int64_t last_t_ = INT64_MIN;
  double max_window_spend_ = 0.0;
};

/// \brief Verifies the population-division discipline: a user may report at
/// most once within any w consecutive timestamps.
class ReportWindowTracker {
 public:
  explicit ReportWindowTracker(int window) : window_(window) {}

  /// Records that user \p user reported at time \p t. Returns false (and
  /// flags a violation) if the user already reported within the last w
  /// timestamps.
  bool RecordReport(uint64_t user, int64_t t);

  bool HasViolation() const { return violation_; }
  int64_t num_reports() const { return num_reports_; }

  // --- Checkpoint state ----------------------------------------------------

  const std::unordered_map<uint64_t, int64_t>& last_reports() const {
    return last_report_;
  }

  void Restore(std::unordered_map<uint64_t, int64_t> last_report,
               bool violation, int64_t num_reports) {
    last_report_ = std::move(last_report);
    violation_ = violation;
    num_reports_ = num_reports;
  }

 private:
  int window_;
  std::unordered_map<uint64_t, int64_t> last_report_;
  bool violation_ = false;
  int64_t num_reports_ = 0;
};

}  // namespace retrasyn

#endif  // RETRASYN_LDP_BUDGET_H_
