#include "ldp/aggregate.h"

#include "common/logging.h"
#include "common/stopwatch.h"

namespace retrasyn {

OracleKind TransitionCollector::EffectiveOracle(double epsilon) const {
  if (oracle_ != OracleKind::kAuto) return oracle_;
  // Both worst-case variances scale as 1/n, so any n > 0 gives the same
  // comparison; GRR wins iff d < 3 e^eps + 2 (Wang et al. '17).
  const uint64_t n = 1000;
  return GrrFrequencyVariance(epsilon, domain_size_, n) <
                 OueFrequencyVariance(epsilon, n)
             ? OracleKind::kGrr
             : OracleKind::kOue;
}

CollectionResult TransitionCollector::Collect(
    const std::vector<StateId>& states, double epsilon, Rng& rng,
    CollectTimings* timings) const {
  CollectionResult result;
  result.epsilon = epsilon;
  if (states.empty() || !(epsilon > 0.0)) {  // also rejects NaN budgets
    return result;
  }
  if (EffectiveOracle(epsilon) == OracleKind::kGrr) {
    return CollectGrr(states, epsilon, rng, timings);
  }
  return CollectOue(states, epsilon, rng, timings);
}

CollectionResult TransitionCollector::CollectOue(
    const std::vector<StateId>& states, double epsilon, Rng& rng,
    CollectTimings* timings) const {
  CollectionResult result;
  result.epsilon = epsilon;
  OueAggregator aggregator(epsilon, domain_size_);
  Stopwatch watch;
  if (mode_ == CollectionMode::kPerUser) {
    OueClient client(epsilon, domain_size_);
    for (StateId s : states) {
      RETRASYN_DCHECK(s < domain_size_);
      aggregator.AddSparseReport(client.PerturbSparse(s, rng));
    }
  } else {
    // Exact-in-distribution aggregate simulation: true counts per state, then
    // a binomial draw for surviving 1-bits and flipped 0-bits per position.
    std::vector<uint64_t> true_counts(domain_size_, 0);
    for (StateId s : states) {
      RETRASYN_DCHECK(s < domain_size_);
      ++true_counts[s];
    }
    const uint64_t n = states.size();
    const double q = OueParams{epsilon, domain_size_}.q();
    std::vector<uint64_t> ones(domain_size_, 0);
    for (uint32_t i = 0; i < domain_size_; ++i) {
      const uint64_t kept = rng.Binomial(true_counts[i], OueParams::p());
      const uint64_t flipped = rng.Binomial(n - true_counts[i], q);
      ones[i] = kept + flipped;
    }
    aggregator.AddRawCounts(ones, n);
  }
  const double perturb_seconds = watch.ElapsedSeconds();
  watch.Reset();
  result.num_reports = aggregator.num_reports();
  result.frequencies = aggregator.EstimateFrequencies();
  if (timings != nullptr) {
    timings->user_side_seconds = perturb_seconds;
    timings->aggregation_seconds = watch.ElapsedSeconds();
  }
  return result;
}

CollectionResult TransitionCollector::CollectGrr(
    const std::vector<StateId>& states, double epsilon, Rng& rng,
    CollectTimings* timings) const {
  CollectionResult result;
  result.epsilon = epsilon;
  GrrAggregator aggregator(epsilon, domain_size_);
  Stopwatch watch;
  if (mode_ == CollectionMode::kPerUser) {
    GrrClient client(epsilon, domain_size_);
    for (StateId s : states) {
      RETRASYN_DCHECK(s < domain_size_);
      aggregator.AddReport(client.Perturb(s, rng));
    }
  } else {
    // Exact aggregate simulation: per true state, Binomial(c, p) reports are
    // kept; each misreport lands uniformly on one of the d - 1 other values.
    // O(n) per round with a tiny constant.
    GrrClient client(epsilon, domain_size_);
    std::vector<uint64_t> true_counts(domain_size_, 0);
    for (StateId s : states) {
      RETRASYN_DCHECK(s < domain_size_);
      ++true_counts[s];
    }
    for (uint32_t x = 0; x < domain_size_; ++x) {
      if (true_counts[x] == 0) continue;
      const uint64_t kept =
          rng.Binomial(true_counts[x], client.keep_probability());
      for (uint64_t k = 0; k < kept; ++k) aggregator.AddReport(x);
      const uint64_t misses = true_counts[x] - kept;
      for (uint64_t m = 0; m < misses; ++m) {
        uint32_t other = static_cast<uint32_t>(
            rng.UniformInt(static_cast<uint64_t>(domain_size_) - 1));
        aggregator.AddReport(other >= x ? other + 1 : other);
      }
    }
  }
  const double perturb_seconds = watch.ElapsedSeconds();
  watch.Reset();
  result.num_reports = aggregator.num_reports();
  result.frequencies = aggregator.EstimateFrequencies();
  if (timings != nullptr) {
    timings->user_side_seconds = perturb_seconds;
    timings->aggregation_seconds = watch.ElapsedSeconds();
  }
  return result;
}

}  // namespace retrasyn
