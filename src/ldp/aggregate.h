// Transition-state collection round: the bridge between a set of reporting
// users (each holding one TransitionState) and the curator's noisy frequency
// estimate over the state space.
//
// Two fidelities are provided:
//  * kPerUser       — every reporting user runs a real OUE client and the
//                     curator aggregates the bit vectors. This is the actual
//                     protocol; O(n * |S|) per round.
//  * kAggregateSim  — the aggregated one-counts are drawn directly from their
//                     exact sampling distribution: for a state with true count
//                     c among n reporters, ones(state) ~ Binomial(c, 1/2) +
//                     Binomial(n - c, q). Because OUE perturbs every bit
//                     independently, this equals the distribution of the
//                     per-user sum, at O(|S|) per round. Benches use this mode
//                     so laptop-scale runs match the paper's population sizes.
//
// A statistical test (tests/ldp_collector_test.cc) verifies the two modes
// produce estimates with matching mean and variance.

#ifndef RETRASYN_LDP_AGGREGATE_H_
#define RETRASYN_LDP_AGGREGATE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "geo/state_space.h"
#include "ldp/frequency_oracle.h"

namespace retrasyn {

enum class CollectionMode {
  kPerUser,
  kAggregateSim,
};

/// \brief Which frequency oracle a collection round runs.
enum class OracleKind {
  kOue,   ///< optimized unary encoding (paper default; best for large |S|)
  kGrr,   ///< generalized randomized response (wins for tiny domains/high eps)
  kAuto,  ///< pick per round by comparing worst-case estimator variances
};

/// \brief Outcome of one LDP collection round.
struct CollectionResult {
  /// Unbiased frequency estimates over the full state space (fraction of the
  /// reporting population per state; may contain negatives before
  /// post-processing).
  std::vector<double> frequencies;
  /// Number of users that reported this round.
  uint64_t num_reports = 0;
  /// Per-report privacy budget used this round.
  double epsilon = 0.0;
};

/// \brief Wall-clock split of one collection round, for the component
/// efficiency experiment (paper Table V): perturbation happens on the user
/// side, aggregation/estimation on the curator side.
struct CollectTimings {
  double user_side_seconds = 0.0;
  double aggregation_seconds = 0.0;
};

/// \brief Runs LDP collection rounds over a transition-state domain.
class TransitionCollector {
 public:
  TransitionCollector(uint32_t domain_size, CollectionMode mode,
                      OracleKind oracle = OracleKind::kOue)
      : domain_size_(domain_size), mode_(mode), oracle_(oracle) {}

  uint32_t domain_size() const { return domain_size_; }
  CollectionMode mode() const { return mode_; }
  OracleKind oracle() const { return oracle_; }

  /// The oracle a round with budget \p epsilon would use (resolves kAuto by
  /// the worst-case variance comparison; per-round population size does not
  /// affect the comparison since both variances scale as 1/n).
  OracleKind EffectiveOracle(double epsilon) const;

  /// Collects the given users' states with per-report budget \p epsilon.
  /// An empty \p states or non-positive epsilon yields a zero-report result
  /// with empty frequency estimates (callers treat that as "no update").
  /// When \p timings is non-null, the user-side / curator-side wall-clock
  /// split is reported through it.
  CollectionResult Collect(const std::vector<StateId>& states, double epsilon,
                           Rng& rng, CollectTimings* timings = nullptr) const;

 private:
  CollectionResult CollectOue(const std::vector<StateId>& states,
                              double epsilon, Rng& rng,
                              CollectTimings* timings) const;
  CollectionResult CollectGrr(const std::vector<StateId>& states,
                              double epsilon, Rng& rng,
                              CollectTimings* timings) const;

  uint32_t domain_size_;
  CollectionMode mode_;
  OracleKind oracle_;
};

}  // namespace retrasyn

#endif  // RETRASYN_LDP_AGGREGATE_H_
