#include "ldp/audit.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "ldp/frequency_oracle.h"

namespace retrasyn {

namespace {

/// log(a/b) with Laplace-smoothed proportions and its delta-method variance.
struct SmoothedRatio {
  double log_ratio;
  double variance;
};

SmoothedRatio LogRatio(uint64_t hits_num, uint64_t hits_den, uint64_t n) {
  const double num = (static_cast<double>(hits_num) + 0.5) / (n + 1.0);
  const double den = (static_cast<double>(hits_den) + 0.5) / (n + 1.0);
  SmoothedRatio out;
  out.log_ratio = std::log(num / den);
  out.variance = (1.0 - num) / (n * num) + (1.0 - den) / (n * den);
  return out;
}

}  // namespace

double OueAnalyticLogRatio(double epsilon) { return epsilon; }

LdpAuditResult AuditOue(double epsilon, uint32_t domain_size, uint64_t trials,
                        Rng& rng) {
  RETRASYN_CHECK(domain_size >= 2);
  RETRASYN_CHECK(trials >= 100);
  OueClient client(epsilon, domain_size);
  const uint32_t x1 = 0, x2 = 1;
  // ones[i][b] = #trials where input x_{i+1} produced bit b set, b in {0,1}.
  uint64_t ones[2][2] = {{0, 0}, {0, 0}};
  for (uint64_t trial = 0; trial < trials; ++trial) {
    const auto v1 = client.Perturb(x1, rng);
    const auto v2 = client.Perturb(x2, rng);
    ones[0][0] += v1[x1];
    ones[0][1] += v1[x2];
    ones[1][0] += v2[x1];
    ones[1][1] += v2[x2];
  }
  // The two inputs differ only at bits x1 and x2; the output log ratio is the
  // sum of the per-bit event log ratios. Maximize over the 4 joint events.
  LdpAuditResult result;
  result.analytic_bound = OueAnalyticLogRatio(epsilon);
  result.trials = trials;
  double best = -1e300;
  double best_var = 0.0;
  for (int b0 = 0; b0 <= 1; ++b0) {
    for (int b1 = 0; b1 <= 1; ++b1) {
      // Event counts for (bit x1 == b0) under each input.
      const uint64_t n0_x1 = b0 ? ones[0][0] : trials - ones[0][0];
      const uint64_t n0_x2 = b0 ? ones[1][0] : trials - ones[1][0];
      const uint64_t n1_x1 = b1 ? ones[0][1] : trials - ones[0][1];
      const uint64_t n1_x2 = b1 ? ones[1][1] : trials - ones[1][1];
      const SmoothedRatio r0 = LogRatio(n0_x1, n0_x2, trials);
      const SmoothedRatio r1 = LogRatio(n1_x1, n1_x2, trials);
      const double total = r0.log_ratio + r1.log_ratio;
      if (total > best) {
        best = total;
        best_var = r0.variance + r1.variance;
      }
    }
  }
  result.empirical_log_ratio = best;
  result.standard_error = std::sqrt(best_var);
  return result;
}

LdpAuditResult AuditGrr(double epsilon, uint32_t domain_size, uint64_t trials,
                        Rng& rng) {
  RETRASYN_CHECK(domain_size >= 2);
  RETRASYN_CHECK(trials >= 100);
  GrrClient client(epsilon, domain_size);
  const uint32_t x1 = 0, x2 = 1;
  // outputs[i][k] = #trials input x_{i+1} produced output k, k in {x1, x2,
  // other}.
  uint64_t outputs[2][3] = {{0, 0, 0}, {0, 0, 0}};
  for (uint64_t trial = 0; trial < trials; ++trial) {
    const uint32_t o1 = client.Perturb(x1, rng);
    const uint32_t o2 = client.Perturb(x2, rng);
    ++outputs[0][o1 == x1 ? 0 : (o1 == x2 ? 1 : 2)];
    ++outputs[1][o2 == x1 ? 0 : (o2 == x2 ? 1 : 2)];
  }
  LdpAuditResult result;
  result.analytic_bound = epsilon;
  result.trials = trials;
  double best = -1e300;
  double best_var = 0.0;
  for (int k = 0; k < 3; ++k) {
    const SmoothedRatio r = LogRatio(outputs[0][k], outputs[1][k], trials);
    if (r.log_ratio > best) {
      best = r.log_ratio;
      best_var = r.variance;
    }
  }
  result.empirical_log_ratio = best;
  result.standard_error = std::sqrt(best_var);
  return result;
}

}  // namespace retrasyn
