// Uniform K x K geospatial discretization (paper SIII-B). Continuous
// coordinates are mapped to grid cells; the reachability constraint of the
// mobility model ("transitions between adjacent cells") is expressed through
// the precomputed neighbor lists here (Moore neighborhood including the cell
// itself, clipped at the border).

#ifndef RETRASYN_GEO_GRID_H_
#define RETRASYN_GEO_GRID_H_

#include <cstdint>
#include <vector>

#include "geo/point.h"

namespace retrasyn {

using CellId = uint32_t;

class Grid {
 public:
  /// Builds a K x K uniform grid over \p box. Requires k >= 1 and a box with
  /// positive width and height.
  Grid(const BoundingBox& box, uint32_t k);

  uint32_t k() const { return k_; }
  uint32_t NumCells() const { return k_ * k_; }
  const BoundingBox& box() const { return box_; }

  uint32_t Row(CellId c) const { return c / k_; }
  uint32_t Col(CellId c) const { return c % k_; }
  CellId Cell(uint32_t row, uint32_t col) const { return row * k_ + col; }

  /// Maps a continuous point to its cell; points outside the box are clamped
  /// to the nearest border cell.
  CellId Locate(const Point& p) const;

  /// Center of a cell in continuous coordinates.
  Point CellCenter(CellId c) const;

  /// Bounding box of a cell.
  BoundingBox CellBounds(CellId c) const;

  /// Neighbor cells of \p c including \p c itself (4, 6, or 9 cells),
  /// in ascending CellId order.
  const std::vector<CellId>& Neighbors(CellId c) const {
    return neighbors_[c];
  }

  /// True when \p to lies in the Moore neighborhood of \p from (incl. itself),
  /// i.e. the movement transition from->to satisfies the reachability
  /// constraint.
  bool AreNeighbors(CellId from, CellId to) const;

  /// Chebyshev (L-inf) distance between two cells, in cell units. This is the
  /// minimum number of timestamps a reachability-respecting walk needs.
  uint32_t ChebyshevDistance(CellId a, CellId b) const;

  /// Clamps a movement destination to the reachability constraint: returns
  /// \p to when it is a neighbor of \p from, else the neighbor of \p from
  /// closest (Chebyshev) to \p to. Both the batch feeder and the streaming
  /// ingestion session use this — they must clamp identically for the
  /// replayed and live paths to encode the same transition states.
  CellId ClampToReachable(CellId from, CellId to) const;

 private:
  BoundingBox box_;
  uint32_t k_;
  double cell_width_;
  double cell_height_;
  std::vector<std::vector<CellId>> neighbors_;
};

}  // namespace retrasyn

#endif  // RETRASYN_GEO_GRID_H_
