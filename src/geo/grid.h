// Uniform K x K geospatial discretization (paper SIII-B), the reference
// SpatialGrid backend. Continuous coordinates are mapped to grid cells; the
// reachability constraint of the mobility model ("transitions between
// adjacent cells") is expressed through the precomputed neighbor lists
// (Moore neighborhood including the cell itself, clipped at the border).

#ifndef RETRASYN_GEO_GRID_H_
#define RETRASYN_GEO_GRID_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geo/point.h"
#include "geo/spatial_grid.h"

namespace retrasyn {

class UniformGrid : public SpatialGrid {
 public:
  /// Builds a K x K uniform grid over \p box. Requires k >= 1 and a box with
  /// positive width and height.
  UniformGrid(const BoundingBox& box, uint32_t k);

  uint32_t k() const { return k_; }

  uint32_t Row(CellId c) const { return c / k_; }
  uint32_t Col(CellId c) const { return c % k_; }
  CellId Cell(uint32_t row, uint32_t col) const { return row * k_ + col; }

  GridBackend backend() const override { return GridBackend::kUniform; }
  const UniformGrid* AsUniform() const override { return this; }

  CellId Locate(const Point& p) const override;
  Point CellCenter(CellId c) const override;
  BoundingBox CellBounds(CellId c) const override;

  /// Closed-form Moore-neighborhood test (no list search).
  bool AreNeighbors(CellId from, CellId to) const override;

  /// Chebyshev (L-inf) distance between two cells, in cell units. This is
  /// the minimum number of timestamps a reachability-respecting walk needs.
  uint32_t ChebyshevDistance(CellId a, CellId b) const;

  /// SpatialGrid::Distance == ChebyshevDistance, exactly (integer-valued
  /// doubles, so ClampToReachable through the interface picks the identical
  /// neighbor the pre-interface implementation did).
  double Distance(CellId a, CellId b) const override {
    return static_cast<double>(ChebyshevDistance(a, b));
  }

  std::string ToString() const override;

 protected:
  void DescribePayload(std::string* out) const override;

 private:
  uint32_t k_;
  double cell_width_;
  double cell_height_;
};

/// Legacy name: the library predates the SpatialGrid seam, and the uniform
/// backend remains the default everywhere.
using Grid = UniformGrid;

}  // namespace retrasyn

#endif  // RETRASYN_GEO_GRID_H_
