#include "geo/grid_factory.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "geo/grid.h"

namespace retrasyn {

DensitySnapshot SyntheticTwoBumpDensity() {
  constexpr uint32_t kProbe = 16;
  DensitySnapshot d;
  d.k = kProbe;
  d.counts.resize(static_cast<size_t>(kProbe) * kProbe);
  // Two population bumps in normalized coordinates: a tight downtown at
  // (0.3, 0.35) and a broader suburb at (0.75, 0.7), over a thin uniform
  // background so no probe cell is exactly empty.
  for (uint32_t iy = 0; iy < kProbe; ++iy) {
    for (uint32_t ix = 0; ix < kProbe; ++ix) {
      const double x = (ix + 0.5) / kProbe;
      const double y = (iy + 0.5) / kProbe;
      const double d1 = ((x - 0.3) * (x - 0.3) + (y - 0.35) * (y - 0.35)) /
                        (2.0 * 0.08 * 0.08);
      const double d2 = ((x - 0.75) * (x - 0.75) + (y - 0.7) * (y - 0.7)) /
                        (2.0 * 0.18 * 0.18);
      d.counts[iy * kProbe + ix] =
          100.0 * std::exp(-d1) + 40.0 * std::exp(-d2) + 0.5;
    }
  }
  return d;
}

Result<std::unique_ptr<SpatialGrid>> MakeSpatialGrid(const BoundingBox& box,
                                                     uint32_t k,
                                                     GridBackend backend) {
  if (k < 1) {
    return Status::InvalidArgument("grid resolution k must be >= 1");
  }
  switch (backend) {
    case GridBackend::kUniform:
      return std::unique_ptr<SpatialGrid>(new UniformGrid(box, k));
    case GridBackend::kQuadtree: {
      // Depth budget: 4^d leaves at full depth must cover k*k, with two
      // extra levels of slack so the greedy builder can follow the density
      // instead of being forced into a uniform split.
      uint32_t depth = 1;
      while ((1ull << (2 * depth)) < static_cast<uint64_t>(k) * k) ++depth;
      depth = std::min(depth + 2, QuadtreeConfig::kMaxDepth);
      auto built = QuadtreeGrid::WithTargetLeaves(
          box, SyntheticTwoBumpDensity(), k * k, depth);
      if (!built.ok()) return built.status();
      return std::unique_ptr<SpatialGrid>(std::move(built).value().release());
    }
  }
  return Status::InvalidArgument("unknown grid backend");
}

GridBackend GridBackendFromEnv() {
  const char* v = std::getenv("RETRASYN_GRID_BACKEND");
  if (v == nullptr || *v == '\0' || std::strcmp(v, "uniform") == 0) {
    return GridBackend::kUniform;
  }
  if (std::strcmp(v, "quadtree") == 0) {
    return GridBackend::kQuadtree;
  }
  std::fprintf(stderr,
               "unrecognized RETRASYN_GRID_BACKEND value: %s "
               "(expected 'uniform' or 'quadtree')\n",
               v);
  std::abort();
}

std::unique_ptr<SpatialGrid> MakeEnvGrid(const BoundingBox& box, uint32_t k) {
  auto grid = MakeSpatialGrid(box, k, GridBackendFromEnv());
  grid.status().CheckOK();
  return std::move(grid).value();
}

}  // namespace retrasyn
