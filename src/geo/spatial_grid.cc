#include "geo/spatial_grid.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace retrasyn {

const char* GridBackendName(GridBackend backend) {
  switch (backend) {
    case GridBackend::kUniform:
      return "uniform";
    case GridBackend::kQuadtree:
      return "quadtree";
  }
  return "unknown";
}

SpatialGrid::SpatialGrid(const BoundingBox& box) : box_(box) {
  RETRASYN_CHECK(box.Width() > 0.0 && box.Height() > 0.0);
}

bool SpatialGrid::AreNeighbors(CellId from, CellId to) const {
  const auto& nbrs = neighbors_[from];
  return std::binary_search(nbrs.begin(), nbrs.end(), to);
}

CellId SpatialGrid::ClampToReachable(CellId from, CellId to) const {
  if (AreNeighbors(from, to)) return to;
  CellId best = from;
  double best_d = Distance(from, to);
  for (CellId nbr : Neighbors(from)) {
    const double d = Distance(nbr, to);
    if (d < best_d) {
      best_d = d;
      best = nbr;
    }
  }
  return best;
}

std::string SpatialGrid::Describe() const {
  std::string out;
  out.push_back(static_cast<char>(backend()));
  DescribeAppendDouble(box_.min_x, &out);
  DescribeAppendDouble(box_.min_y, &out);
  DescribeAppendDouble(box_.max_x, &out);
  DescribeAppendDouble(box_.max_y, &out);
  DescribePayload(&out);
  return out;
}

void DescribeAppendU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void DescribeAppendDouble(double v, std::string* out) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((bits >> (8 * i)) & 0xFF));
  }
}

}  // namespace retrasyn
