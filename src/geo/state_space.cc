#include "geo/state_space.h"

#include <algorithm>

#include "common/logging.h"

namespace retrasyn {

StateSpace::StateSpace(const SpatialGrid& grid)
    : grid_(&grid), num_cells_(grid.NumCells()) {
  move_offset_.resize(num_cells_ + 1);
  StateId offset = 0;
  for (CellId c = 0; c < num_cells_; ++c) {
    move_offset_[c] = offset;
    offset += static_cast<StateId>(grid.Neighbors(c).size());
  }
  move_offset_[num_cells_] = offset;
  num_move_ = offset;
  size_ = num_move_ + 2 * num_cells_;

  move_source_.resize(num_move_);
  for (CellId c = 0; c < num_cells_; ++c) {
    for (StateId i = move_offset_[c]; i < move_offset_[c + 1]; ++i) {
      move_source_[i] = c;
    }
  }
}

StateId StateSpace::MoveIndex(CellId from, CellId to) const {
  const auto& nbrs = grid_->Neighbors(from);
  // Neighbor lists are sorted, <= 9 entries: binary search via lower_bound.
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), to);
  if (it == nbrs.end() || *it != to) return kInvalidState;
  return move_offset_[from] + static_cast<StateId>(it - nbrs.begin());
}

StateId StateSpace::Encode(const TransitionState& s) const {
  switch (s.kind) {
    case StateKind::kMove:
      return MoveIndex(s.from, s.to);
    case StateKind::kEnter:
      return EnterIndex(s.from);
    case StateKind::kQuit:
      return QuitIndex(s.from);
  }
  return kInvalidState;
}

TransitionState StateSpace::Decode(StateId id) const {
  RETRASYN_DCHECK(id < size_);
  if (id < num_move_) {
    const CellId from = move_source_[id];
    const CellId to = grid_->Neighbors(from)[id - move_offset_[from]];
    return TransitionState{StateKind::kMove, from, to};
  }
  if (id < num_move_ + num_cells_) {
    const CellId cell = id - num_move_;
    return TransitionState{StateKind::kEnter, cell, cell};
  }
  const CellId cell = id - num_move_ - num_cells_;
  return TransitionState{StateKind::kQuit, cell, cell};
}

std::vector<StateId> StateSpace::MoveStatesFrom(CellId from) const {
  std::vector<StateId> out;
  out.reserve(move_offset_[from + 1] - move_offset_[from]);
  for (StateId i = move_offset_[from]; i < move_offset_[from + 1]; ++i) {
    out.push_back(i);
  }
  return out;
}

std::string StateSpace::ToString(StateId id) const {
  const TransitionState s = Decode(id);
  switch (s.kind) {
    case StateKind::kMove:
      return "m(" + std::to_string(s.from) + "->" + std::to_string(s.to) + ")";
    case StateKind::kEnter:
      return "e(" + std::to_string(s.from) + ")";
    case StateKind::kQuit:
      return "q(" + std::to_string(s.from) + ")";
  }
  return "?";
}

}  // namespace retrasyn
