#include "geo/quadtree_grid.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "common/logging.h"

namespace retrasyn {

namespace {

// Exact area-weighted integral of the piecewise-constant density field over a
// normalized sub-rectangle of the unit square. Probe cells partially covered
// by the rectangle contribute their overlap fraction, so node masses are
// additive: a node's mass equals the sum of its four children's, whatever the
// probe lattice resolution.
class DensityField {
 public:
  explicit DensityField(const DensitySnapshot& density) : k_(density.k) {
    counts_.reserve(density.counts.size());
    for (double c : density.counts) {
      counts_.push_back(std::max(0.0, c));  // noisy counts may be negative
    }
  }

  double MassInRect(double nx0, double ny0, double nx1, double ny1) const {
    const double gx0 = nx0 * k_;
    const double gy0 = ny0 * k_;
    const double gx1 = nx1 * k_;
    const double gy1 = ny1 * k_;
    const uint32_t ix0 = static_cast<uint32_t>(
        std::clamp(std::floor(gx0), 0.0, static_cast<double>(k_ - 1)));
    const uint32_t iy0 = static_cast<uint32_t>(
        std::clamp(std::floor(gy0), 0.0, static_cast<double>(k_ - 1)));
    const uint32_t ix1 = static_cast<uint32_t>(
        std::clamp(std::ceil(gx1), 1.0, static_cast<double>(k_)));
    const uint32_t iy1 = static_cast<uint32_t>(
        std::clamp(std::ceil(gy1), 1.0, static_cast<double>(k_)));
    double mass = 0.0;
    for (uint32_t iy = iy0; iy < iy1; ++iy) {
      const double hy = std::min(gy1, static_cast<double>(iy + 1)) -
                        std::max(gy0, static_cast<double>(iy));
      if (hy <= 0.0) continue;
      for (uint32_t ix = ix0; ix < ix1; ++ix) {
        const double wx = std::min(gx1, static_cast<double>(ix + 1)) -
                          std::max(gx0, static_cast<double>(ix));
        if (wx <= 0.0) continue;
        mass += counts_[iy * k_ + ix] * wx * hy;
      }
    }
    return mass;
  }

  /// Mass of the node (depth, ix, iy) in the dyadic hierarchy.
  double NodeMass(uint32_t depth, uint32_t ix, uint32_t iy) const {
    const double inv = 1.0 / static_cast<double>(1u << depth);
    return MassInRect(ix * inv, iy * inv, (ix + 1) * inv, (iy + 1) * inv);
  }

 private:
  uint32_t k_;
  std::vector<double> counts_;
};

}  // namespace

Status QuadtreeConfig::Validate() const {
  if (max_depth < 1 || max_depth > kMaxDepth) {
    return Status::InvalidArgument("quadtree max_depth must be in [1, " +
                                   std::to_string(kMaxDepth) + "], got " +
                                   std::to_string(max_depth));
  }
  if (!(split_threshold >= 0.0) || !std::isfinite(split_threshold)) {
    return Status::InvalidArgument(
        "quadtree split_threshold must be finite and >= 0");
  }
  return Status::OK();
}

Status DensitySnapshot::Validate() const {
  if (k < 1) {
    return Status::InvalidArgument("density snapshot k must be >= 1");
  }
  if (counts.size() != static_cast<size_t>(k) * k) {
    return Status::InvalidArgument(
        "density snapshot expects " + std::to_string(uint64_t{k} * k) +
        " counts, got " + std::to_string(counts.size()));
  }
  for (double c : counts) {
    if (!std::isfinite(c)) {
      return Status::InvalidArgument("density snapshot counts must be finite");
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<QuadtreeGrid>> QuadtreeGrid::Build(
    const BoundingBox& box, const DensitySnapshot& density,
    const QuadtreeConfig& config) {
  RETRASYN_RETURN_NOT_OK(config.Validate());
  RETRASYN_RETURN_NOT_OK(density.Validate());
  if (!(box.Width() > 0.0) || !(box.Height() > 0.0)) {
    return Status::InvalidArgument("quadtree box must have positive extent");
  }

  const DensityField field(density);
  std::unique_ptr<QuadtreeGrid> grid(new QuadtreeGrid(box, config.max_depth));
  grid->nodes_.push_back(Node{0, 0, 0, -1, 0, field.NodeMass(0, 0, 0)});

  // Iterative expansion; the four children of a split are stored contiguously
  // so a single child index suffices. Traversal order here does not matter —
  // leaf ids come from the pre-order pass in Finalize().
  std::vector<size_t> pending{0};
  while (!pending.empty()) {
    const size_t i = pending.back();
    pending.pop_back();
    const Node n = grid->nodes_[i];  // copy: the vector reallocates below
    if (n.depth >= config.max_depth || !(n.mass > config.split_threshold)) {
      continue;
    }
    grid->nodes_[i].child = static_cast<int32_t>(grid->nodes_.size());
    for (uint32_t dy = 0; dy < 2; ++dy) {
      for (uint32_t dx = 0; dx < 2; ++dx) {
        const uint32_t cx = n.ix * 2 + dx;
        const uint32_t cy = n.iy * 2 + dy;
        pending.push_back(grid->nodes_.size());
        grid->nodes_.push_back(
            Node{n.depth + 1, cx, cy, -1, 0, field.NodeMass(n.depth + 1, cx, cy)});
      }
    }
  }

  // Merge sibling sets that are all empty leaves back into their parent.
  // Children are always created after their parent, so one reverse sweep
  // cascades merges bottom-up.
  for (size_t i = grid->nodes_.size(); i-- > 0;) {
    const int32_t child = grid->nodes_[i].child;
    if (child < 0) continue;
    bool all_empty = true;
    for (int32_t j = 0; j < 4; ++j) {
      const Node& c = grid->nodes_[static_cast<size_t>(child + j)];
      if (c.child >= 0 || c.mass > 0.0) {
        all_empty = false;
        break;
      }
    }
    if (all_empty) grid->nodes_[i].child = -1;
  }

  grid->Finalize();
  return grid;
}

Result<std::unique_ptr<QuadtreeGrid>> QuadtreeGrid::WithTargetLeaves(
    const BoundingBox& box, const DensitySnapshot& density,
    uint32_t target_leaves, uint32_t max_depth) {
  QuadtreeConfig probe;
  probe.max_depth = max_depth;
  RETRASYN_RETURN_NOT_OK(probe.Validate());
  RETRASYN_RETURN_NOT_OK(density.Validate());
  if (!(box.Width() > 0.0) || !(box.Height() > 0.0)) {
    return Status::InvalidArgument("quadtree box must have positive extent");
  }
  if (target_leaves < 1) {
    return Status::InvalidArgument("target_leaves must be >= 1");
  }

  const DensityField field(density);
  std::unique_ptr<QuadtreeGrid> grid(new QuadtreeGrid(box, max_depth));
  grid->nodes_.push_back(Node{0, 0, 0, -1, 0, field.NodeMass(0, 0, 0)});
  uint32_t leaves = 1;

  while (leaves + 3 <= target_leaves) {
    // Highest-mass splittable leaf, lowest node index on ties; zero-mass
    // leaves therefore split only once every massy region is exhausted.
    size_t best = grid->nodes_.size();
    double best_mass = -1.0;
    for (size_t i = 0; i < grid->nodes_.size(); ++i) {
      const Node& n = grid->nodes_[i];
      if (n.child >= 0 || n.depth >= max_depth) continue;
      if (n.mass > best_mass) {
        best_mass = n.mass;
        best = i;
      }
    }
    if (best == grid->nodes_.size()) break;  // everything at max depth
    const Node n = grid->nodes_[best];
    grid->nodes_[best].child = static_cast<int32_t>(grid->nodes_.size());
    for (uint32_t dy = 0; dy < 2; ++dy) {
      for (uint32_t dx = 0; dx < 2; ++dx) {
        const uint32_t cx = n.ix * 2 + dx;
        const uint32_t cy = n.iy * 2 + dy;
        grid->nodes_.push_back(
            Node{n.depth + 1, cx, cy, -1, 0, field.NodeMass(n.depth + 1, cx, cy)});
      }
    }
    leaves += 3;
  }

  grid->Finalize();
  return grid;
}

void QuadtreeGrid::Finalize() {
  // Pre-order leaf numbering (children row-major in (y, x)): the CellId
  // assignment is a pure function of the split structure.
  leaves_.clear();
  leaf_node_.clear();
  std::vector<size_t> stack{0};
  // Explicit stack preserving recursive pre-order: push children reversed.
  while (!stack.empty()) {
    const size_t i = stack.back();
    stack.pop_back();
    Node& n = nodes_[i];
    if (n.child >= 0) {
      for (int32_t j = 3; j >= 0; --j) {
        stack.push_back(static_cast<size_t>(n.child + j));
      }
      continue;
    }
    n.leaf = static_cast<CellId>(leaves_.size());
    const uint32_t span = 1u << (max_depth_ - n.depth);
    leaves_.push_back(LeafRect{n.ix * span, n.iy * span, span});
    leaf_node_.push_back(static_cast<uint32_t>(i));
  }
  num_cells_ = static_cast<uint32_t>(leaves_.size());

  // Adjacency: two leaves are neighbors iff their closed rectangles touch
  // (edge or corner). Walk the one-lattice-cell ring around each leaf and
  // resolve each ring cell to its owning leaf with an O(depth) tree descent;
  // every touching leaf owns at least one ring cell.
  const uint32_t res = 1u << max_depth_;
  auto leaf_at = [&](uint32_t lx, uint32_t ly) -> CellId {
    size_t i = 0;
    while (nodes_[i].child >= 0) {
      const uint32_t d = nodes_[i].depth;
      const uint32_t dx = (lx >> (max_depth_ - d - 1)) & 1u;
      const uint32_t dy = (ly >> (max_depth_ - d - 1)) & 1u;
      i = static_cast<size_t>(nodes_[i].child + static_cast<int32_t>(dy * 2 + dx));
    }
    return nodes_[i].leaf;
  };

  neighbors_.assign(num_cells_, {});
  std::vector<CellId> ring;
  for (CellId c = 0; c < num_cells_; ++c) {
    const LeafRect& r = leaves_[c];
    ring.clear();
    ring.push_back(c);  // reachability sets are self-inclusive
    const int64_t x_lo = static_cast<int64_t>(r.x0) - 1;
    const int64_t x_hi = static_cast<int64_t>(r.x0) + r.span;
    const int64_t y_lo = static_cast<int64_t>(r.y0) - 1;
    const int64_t y_hi = static_cast<int64_t>(r.y0) + r.span;
    for (int64_t y = y_lo; y <= y_hi; ++y) {
      if (y < 0 || y >= res) continue;
      for (int64_t x = x_lo; x <= x_hi; ++x) {
        if (x < 0 || x >= res) continue;
        const bool on_ring = (x == x_lo || x == x_hi || y == y_lo || y == y_hi);
        if (!on_ring) continue;
        ring.push_back(leaf_at(static_cast<uint32_t>(x), static_cast<uint32_t>(y)));
      }
    }
    std::sort(ring.begin(), ring.end());
    ring.erase(std::unique(ring.begin(), ring.end()), ring.end());
    neighbors_[c] = ring;
  }
}

CellId QuadtreeGrid::Locate(const Point& p) const {
  const Point q = box_.Clamp(p);
  const uint32_t res = 1u << max_depth_;
  uint32_t lx = static_cast<uint32_t>((q.x - box_.min_x) / box_.Width() * res);
  uint32_t ly = static_cast<uint32_t>((q.y - box_.min_y) / box_.Height() * res);
  // The max coordinate lands exactly on the far edge; fold it inward so
  // Locate is total on the closed box.
  lx = std::min(lx, res - 1);
  ly = std::min(ly, res - 1);
  size_t i = 0;
  while (nodes_[i].child >= 0) {
    const uint32_t d = nodes_[i].depth;
    const uint32_t dx = (lx >> (max_depth_ - d - 1)) & 1u;
    const uint32_t dy = (ly >> (max_depth_ - d - 1)) & 1u;
    i = static_cast<size_t>(nodes_[i].child + static_cast<int32_t>(dy * 2 + dx));
  }
  return nodes_[i].leaf;
}

Point QuadtreeGrid::CellCenter(CellId c) const {
  const LeafRect& r = leaves_[c];
  const double res = static_cast<double>(1u << max_depth_);
  return Point{box_.min_x + (r.x0 + r.span * 0.5) / res * box_.Width(),
               box_.min_y + (r.y0 + r.span * 0.5) / res * box_.Height()};
}

BoundingBox QuadtreeGrid::CellBounds(CellId c) const {
  const LeafRect& r = leaves_[c];
  const double res = static_cast<double>(1u << max_depth_);
  BoundingBox b;
  b.min_x = box_.min_x + r.x0 / res * box_.Width();
  b.min_y = box_.min_y + r.y0 / res * box_.Height();
  b.max_x = box_.min_x + (r.x0 + r.span) / res * box_.Width();
  b.max_y = box_.min_y + (r.y0 + r.span) / res * box_.Height();
  return b;
}

double QuadtreeGrid::Distance(CellId a, CellId b) const {
  // Chebyshev gap between the two lattice rectangles, in finest-lattice
  // units: zero exactly when the closed rectangles touch (== neighbors), and
  // integer-valued, so downstream comparisons are exact.
  const LeafRect& ra = leaves_[a];
  const LeafRect& rb = leaves_[b];
  const int64_t gx = std::max<int64_t>(
      {0,
       static_cast<int64_t>(ra.x0) - (static_cast<int64_t>(rb.x0) + rb.span),
       static_cast<int64_t>(rb.x0) - (static_cast<int64_t>(ra.x0) + ra.span)});
  const int64_t gy = std::max<int64_t>(
      {0,
       static_cast<int64_t>(ra.y0) - (static_cast<int64_t>(rb.y0) + rb.span),
       static_cast<int64_t>(rb.y0) - (static_cast<int64_t>(ra.y0) + ra.span)});
  return static_cast<double>(std::max(gx, gy));
}

uint32_t QuadtreeGrid::LeafDepth(CellId c) const {
  return nodes_[leaf_node_[c]].depth;
}

void QuadtreeGrid::DescribePayload(std::string* out) const {
  // max_depth, leaf count, then the pre-order split structure as a bitstring
  // (1 = internal, 0 = leaf), which pins the CellId assignment exactly.
  DescribeAppendU32(max_depth_, out);
  DescribeAppendU32(num_cells_, out);
  std::vector<bool> bits;
  bits.reserve(nodes_.size());
  std::vector<size_t> stack{0};
  while (!stack.empty()) {
    const size_t i = stack.back();
    stack.pop_back();
    const Node& n = nodes_[i];
    bits.push_back(n.child >= 0);
    if (n.child >= 0) {
      for (int32_t j = 3; j >= 0; --j) {
        stack.push_back(static_cast<size_t>(n.child + j));
      }
    }
  }
  DescribeAppendU32(static_cast<uint32_t>(bits.size()), out);
  uint8_t acc = 0;
  int filled = 0;
  for (bool b : bits) {
    acc |= static_cast<uint8_t>(b ? 1u : 0u) << filled;
    if (++filled == 8) {
      out->push_back(static_cast<char>(acc));
      acc = 0;
      filled = 0;
    }
  }
  if (filled > 0) out->push_back(static_cast<char>(acc));
}

std::string QuadtreeGrid::ToString() const {
  return "quadtree(depth<=" + std::to_string(max_depth_) + ", " +
         std::to_string(num_cells_) + " leaves)";
}

}  // namespace retrasyn
