// The pluggable spatial-index seam: every consumer of the discretization —
// state space, mobility model, sampler cache, engine, feeder, ingest
// validation, release server, metrics, durability fingerprint — programs
// against this interface, so alternate decompositions (the density-adaptive
// quadtree of quadtree_grid.h, road-constrained masks, ...) drop in without
// touching the layers above.
//
// Contract every backend must honor:
//  * Cells are dense ids [0, NumCells()). The id assignment is part of the
//    protocol surface (LDP oracles encode against the derived state space),
//    so construction must be deterministic for identical inputs.
//  * Locate is total on the plane: out-of-box points clamp to a border cell,
//    and every point inside CellBounds(c) locates to c (ties on shared cell
//    edges resolve to exactly one owner).
//  * Neighbors(c) is the reachability set of c — sorted ascending, deduped,
//    and including c itself — precomputed at construction so the synthesis
//    hot path (alias tables indexed parallel to these lists) samples in O(1)
//    per point with no virtual dispatch and no allocation.
//  * AreNeighbors(a, b) == (b in Neighbors(a)) and is symmetric.
//  * Distance is a backend-defined cell-units metric generalizing the
//    uniform grid's Chebyshev distance: Distance(a, a) == 0, symmetric, and
//    Distance(a, b) == 0 for distinct cells only when they are neighbors.
//    ClampToReachable minimizes it over Neighbors(from), so it determines
//    how non-adjacent movement reports are folded onto the reachability
//    constraint — both the batch feeder and the live ingest session clamp
//    through this one implementation.
//  * Describe() is the canonical serialized identity of the discretization:
//    backend kind + bounding box + every structural parameter (for the
//    quadtree, the full split structure). Two grids with equal Describe()
//    bytes behave identically; the journal/checkpoint deployment fingerprint
//    hashes these bytes so recovery under a different grid is refused loudly
//    instead of silently diverging.

#ifndef RETRASYN_GEO_SPATIAL_GRID_H_
#define RETRASYN_GEO_SPATIAL_GRID_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geo/point.h"

namespace retrasyn {

using CellId = uint32_t;

class UniformGrid;

/// \brief Spatial-index backend kind; the leading byte of Describe().
enum class GridBackend : uint8_t {
  kUniform = 0,   ///< fixed K x K discretization (paper SIII-B)
  kQuadtree = 1,  ///< density-adaptive quadtree (LDPTrace lineage)
};

const char* GridBackendName(GridBackend backend);

class SpatialGrid {
 public:
  virtual ~SpatialGrid() = default;

  SpatialGrid(const SpatialGrid&) = delete;
  SpatialGrid& operator=(const SpatialGrid&) = delete;

  /// Number of cells |C|; cell ids are dense in [0, NumCells()).
  uint32_t NumCells() const { return num_cells_; }

  /// The continuous region the discretization covers.
  const BoundingBox& box() const { return box_; }

  virtual GridBackend backend() const = 0;

  /// The uniform-grid view of this backend, or nullptr. Row/column-indexed
  /// consumers (2D prefix sums, RangeQuery rectangles) only exist on the
  /// uniform lattice; they gate on this instead of assuming it.
  virtual const UniformGrid* AsUniform() const { return nullptr; }

  /// Maps a continuous point to its cell; points outside the box are clamped
  /// to the nearest border cell.
  virtual CellId Locate(const Point& p) const = 0;

  /// Center of a cell in continuous coordinates.
  virtual Point CellCenter(CellId c) const = 0;

  /// Bounding box of a cell.
  virtual BoundingBox CellBounds(CellId c) const = 0;

  /// Reachability set of \p c including \p c itself, ascending, deduped.
  /// Precomputed; never allocates, never dispatches virtually — hot-path
  /// safe for any backend.
  const std::vector<CellId>& Neighbors(CellId c) const {
    return neighbors_[c];
  }

  /// True when the movement transition from->to satisfies the reachability
  /// constraint, i.e. \p to is in Neighbors(\p from). Symmetric. The default
  /// binary-searches the (sorted, <= few dozen entries) neighbor list;
  /// backends with a closed form override it.
  virtual bool AreNeighbors(CellId from, CellId to) const;

  /// Cell-units distance generalizing the uniform grid's Chebyshev metric
  /// (see the contract above). Only comparisons of exact values matter
  /// downstream, so backends must compute it deterministically.
  virtual double Distance(CellId a, CellId b) const = 0;

  /// Clamps a movement destination to the reachability constraint: returns
  /// \p to when it is a neighbor of \p from, else the neighbor of \p from
  /// closest under Distance (first in ascending cell order on ties). The
  /// batch feeder and the streaming ingestion session both clamp through
  /// this — they must clamp identically for the replayed and live paths to
  /// encode the same transition states.
  CellId ClampToReachable(CellId from, CellId to) const;

  /// Canonical serialized identity: backend byte, bounding box (raw IEEE-754
  /// little-endian), then the backend's structural payload. Stable across
  /// processes and platforms; hashed into the deployment fingerprint and
  /// round-tripped verbatim by the checkpoint codec.
  std::string Describe() const;

  /// Human-readable one-liner for logs and error messages.
  virtual std::string ToString() const = 0;

 protected:
  /// \p box must have positive width and height (checked).
  explicit SpatialGrid(const BoundingBox& box);

  /// Appends the backend's structural parameters to the Describe() blob.
  virtual void DescribePayload(std::string* out) const = 0;

  BoundingBox box_;
  uint32_t num_cells_ = 0;
  /// Per-cell reachability lists; derived classes fill these at construction
  /// (sorted ascending, deduped, self-inclusive).
  std::vector<std::vector<CellId>> neighbors_;
};

// --- Describe() primitives (shared by backends and tests) -------------------

void DescribeAppendU32(uint32_t v, std::string* out);
void DescribeAppendDouble(double v, std::string* out);

}  // namespace retrasyn

#endif  // RETRASYN_GEO_SPATIAL_GRID_H_
