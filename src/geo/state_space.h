// Transition-state space S = {m_ij} u {e_i} u {q_j} (paper SIII-B, Def. 5).
//
// Movement states m_ij are restricted to the reachability constraint
// (j in the Moore neighborhood of i, including i itself), so the state count
// is O(9|C|) instead of |C|^2. Each state is assigned a dense index:
//
//   [0, num_move)                    movement states, grouped by source cell
//   [num_move, num_move + |C|)       entering states e_i
//   [num_move + |C|, size)           quitting states q_j
//
// The dense indexing is what the LDP frequency oracles encode against, so it
// is part of the protocol surface and must remain stable for a given grid.

#ifndef RETRASYN_GEO_STATE_SPACE_H_
#define RETRASYN_GEO_STATE_SPACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geo/spatial_grid.h"

namespace retrasyn {

using StateId = uint32_t;

inline constexpr StateId kInvalidState = static_cast<StateId>(-1);

enum class StateKind : uint8_t {
  kMove = 0,   ///< m_ij: moved from cell i to adjacent cell j (possibly i==j)
  kEnter = 1,  ///< e_i: stream begins at cell i
  kQuit = 2,   ///< q_j: stream ends, final reported location was cell j
};

/// \brief A decoded transition state.
struct TransitionState {
  StateKind kind = StateKind::kMove;
  CellId from = 0;  ///< source cell for kMove; the cell for kEnter/kQuit
  CellId to = 0;    ///< destination cell for kMove; equals `from` otherwise

  friend bool operator==(const TransitionState& a, const TransitionState& b) {
    return a.kind == b.kind && a.from == b.from && a.to == b.to;
  }
};

class StateSpace {
 public:
  explicit StateSpace(const SpatialGrid& grid);

  /// Total number of states |S|.
  uint32_t size() const { return size_; }
  uint32_t num_move_states() const { return num_move_; }
  uint32_t num_cells() const { return num_cells_; }

  /// Dense index of movement state m_{from,to}; kInvalidState when `to` is not
  /// reachable from `from` under the adjacency constraint.
  StateId MoveIndex(CellId from, CellId to) const;

  StateId EnterIndex(CellId cell) const { return num_move_ + cell; }
  StateId QuitIndex(CellId cell) const { return num_move_ + num_cells_ + cell; }

  /// Encodes a decoded state; kInvalidState for infeasible movement states.
  StateId Encode(const TransitionState& s) const;

  /// Decodes a dense index back into a transition state. Requires id < size().
  TransitionState Decode(StateId id) const;

  bool IsMove(StateId id) const { return id < num_move_; }
  bool IsEnter(StateId id) const {
    return id >= num_move_ && id < num_move_ + num_cells_;
  }
  bool IsQuit(StateId id) const {
    return id >= num_move_ + num_cells_ && id < size_;
  }

  /// Dense indices of all movement states with source cell \p from, parallel
  /// to grid.Neighbors(from).
  std::vector<StateId> MoveStatesFrom(CellId from) const;

  /// First movement-state index for source cell \p from; its movement states
  /// occupy [MoveOffset(from), MoveOffset(from) + Neighbors(from).size()).
  StateId MoveOffset(CellId from) const { return move_offset_[from]; }

  const SpatialGrid& grid() const { return *grid_; }

  /// Debug representation, e.g. "m(3->4)", "e(7)", "q(0)".
  std::string ToString(StateId id) const;

 private:
  const SpatialGrid* grid_;
  uint32_t num_cells_;
  uint32_t num_move_;
  uint32_t size_;
  // Prefix sums of neighbor counts: movement states of cell i start at
  // move_offset_[i]; move_offset_[num_cells_] == num_move_.
  std::vector<StateId> move_offset_;
  // Decode table for movement states: source cell per dense move index.
  std::vector<CellId> move_source_;
};

}  // namespace retrasyn

#endif  // RETRASYN_GEO_STATE_SPACE_H_
