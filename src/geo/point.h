// Basic planar geometry types shared across the library: continuous points
// and axis-aligned bounding boxes.

#ifndef RETRASYN_GEO_POINT_H_
#define RETRASYN_GEO_POINT_H_

#include <algorithm>
#include <cmath>

namespace retrasyn {

struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

inline double EuclideanDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// \brief Axis-aligned bounding box [min_x, max_x] x [min_y, max_y].
struct BoundingBox {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 1.0;
  double max_y = 1.0;

  double Width() const { return max_x - min_x; }
  double Height() const { return max_y - min_y; }

  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  /// Clamps \p p into the box (used when generated or imported points drift
  /// marginally outside the declared region).
  Point Clamp(const Point& p) const {
    return Point{std::clamp(p.x, min_x, max_x), std::clamp(p.y, min_y, max_y)};
  }

  /// Expands the box to cover \p p.
  void Extend(const Point& p) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
};

}  // namespace retrasyn

#endif  // RETRASYN_GEO_POINT_H_
