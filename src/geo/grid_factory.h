// Backend selection helpers: construct a SpatialGrid of either backend at a
// matched effective cell count, and resolve the backend from the
// RETRASYN_GRID_BACKEND environment variable so the test suites (and CI) can
// run the whole service stack under the quadtree without code changes.

#ifndef RETRASYN_GEO_GRID_FACTORY_H_
#define RETRASYN_GEO_GRID_FACTORY_H_

#include <cstdint>
#include <memory>

#include "common/status.h"
#include "geo/quadtree_grid.h"
#include "geo/spatial_grid.h"

namespace retrasyn {

/// \brief Deterministic synthetic density over a 16x16 probe lattice: two
/// Gaussian population bumps (a "downtown" and a "suburb") over a sparse
/// background. Used wherever a quadtree is wanted at a matched cell budget
/// but no released density exists yet (benches, env-parameterized tests).
DensitySnapshot SyntheticTwoBumpDensity();

/// \brief Builds a grid of \p backend over \p box with an effective cell
/// count matched to a uniform k x k grid: the uniform backend is exactly
/// k x k; the quadtree is built from SyntheticTwoBumpDensity() with a
/// target of k*k leaves (exact whenever k*k ≡ 1 mod 3, e.g. every k not
/// divisible by 3; otherwise the closest reachable count below).
Result<std::unique_ptr<SpatialGrid>> MakeSpatialGrid(const BoundingBox& box,
                                                     uint32_t k,
                                                     GridBackend backend);

/// \brief Backend selected by the RETRASYN_GRID_BACKEND environment variable
/// ("uniform" / unset -> kUniform, "quadtree" -> kQuadtree). Aborts on any
/// other value so CI typos fail loudly instead of silently testing uniform.
GridBackend GridBackendFromEnv();

/// \brief MakeSpatialGrid under GridBackendFromEnv(); aborts on construction
/// failure (test/bench convenience — inputs are programmer-controlled).
std::unique_ptr<SpatialGrid> MakeEnvGrid(const BoundingBox& box, uint32_t k);

}  // namespace retrasyn

#endif  // RETRASYN_GEO_GRID_FACTORY_H_
