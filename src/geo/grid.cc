#include "geo/grid.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"

namespace retrasyn {

UniformGrid::UniformGrid(const BoundingBox& box, uint32_t k)
    : SpatialGrid(box), k_(k) {
  RETRASYN_CHECK(k >= 1);
  cell_width_ = box.Width() / k_;
  cell_height_ = box.Height() / k_;
  num_cells_ = k_ * k_;
  neighbors_.resize(NumCells());
  for (CellId c = 0; c < NumCells(); ++c) {
    const int row = static_cast<int>(Row(c));
    const int col = static_cast<int>(Col(c));
    for (int dr = -1; dr <= 1; ++dr) {
      for (int dc = -1; dc <= 1; ++dc) {
        const int nr = row + dr;
        const int nc = col + dc;
        if (nr < 0 || nc < 0 || nr >= static_cast<int>(k_) ||
            nc >= static_cast<int>(k_)) {
          continue;
        }
        neighbors_[c].push_back(Cell(nr, nc));
      }
    }
    std::sort(neighbors_[c].begin(), neighbors_[c].end());
  }
}

CellId UniformGrid::Locate(const Point& p) const {
  const Point q = box_.Clamp(p);
  uint32_t col = static_cast<uint32_t>((q.x - box_.min_x) / cell_width_);
  uint32_t row = static_cast<uint32_t>((q.y - box_.min_y) / cell_height_);
  // The max coordinate lands exactly on the far edge; fold it into the last
  // row/column so Locate is total on the closed box.
  col = std::min(col, k_ - 1);
  row = std::min(row, k_ - 1);
  return Cell(row, col);
}

Point UniformGrid::CellCenter(CellId c) const {
  return Point{box_.min_x + (Col(c) + 0.5) * cell_width_,
               box_.min_y + (Row(c) + 0.5) * cell_height_};
}

BoundingBox UniformGrid::CellBounds(CellId c) const {
  BoundingBox b;
  b.min_x = box_.min_x + Col(c) * cell_width_;
  b.min_y = box_.min_y + Row(c) * cell_height_;
  b.max_x = b.min_x + cell_width_;
  b.max_y = b.min_y + cell_height_;
  return b;
}

bool UniformGrid::AreNeighbors(CellId from, CellId to) const {
  const int dr = static_cast<int>(Row(from)) - static_cast<int>(Row(to));
  const int dc = static_cast<int>(Col(from)) - static_cast<int>(Col(to));
  return std::abs(dr) <= 1 && std::abs(dc) <= 1;
}

uint32_t UniformGrid::ChebyshevDistance(CellId a, CellId b) const {
  const int dr = static_cast<int>(Row(a)) - static_cast<int>(Row(b));
  const int dc = static_cast<int>(Col(a)) - static_cast<int>(Col(b));
  return static_cast<uint32_t>(std::max(std::abs(dr), std::abs(dc)));
}

void UniformGrid::DescribePayload(std::string* out) const {
  DescribeAppendU32(k_, out);
}

std::string UniformGrid::ToString() const {
  return "uniform(" + std::to_string(k_) + "x" + std::to_string(k_) + ")";
}

}  // namespace retrasyn
