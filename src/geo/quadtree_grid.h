// Density-adaptive quadtree discretization (LDPTrace / PrivTrace lineage):
// dense regions split into fine cells, empty regions stay coarse, so a fixed
// cell budget buys resolution where the population actually is.
//
// Construction is deterministic and *private by post-processing*: the input
// density snapshot must itself come from already-privatized counts (e.g. a
// released per-cell density or a DP'd initial histogram), so the split
// structure reveals nothing beyond what the release already did (Thm. 2).
// Starting from the root, any node whose (noisy) mass exceeds
// `split_threshold` splits into four children down to `max_depth`; a split
// whose four children are all empty leaves merges back. The alternative
// builder `WithTargetLeaves` splits greedily by descending mass until a leaf
// budget is met — the knob used to match a uniform grid's effective cell
// count for apples-to-apples comparisons.
//
// Leaves are numbered in depth-first pre-order (children visited row-major:
// SW, SE, NW, NE in (y, x) order), which fixes the CellId assignment — and
// with it the derived transition-state space — as a pure function of the
// split structure. Adjacency (all bounds-touching leaves, including
// diagonally touching and the leaf itself) is precomputed into the base
// class's neighbor lists, so the synthesis hot path stays O(1) per point.
//
// Geometry is exact: every leaf is a dyadic sub-rectangle of the box,
// represented in integer lattice units at 2^max_depth resolution, so
// adjacency, Locate, and Distance never depend on floating-point edge
// comparisons.

#ifndef RETRASYN_GEO_QUADTREE_GRID_H_
#define RETRASYN_GEO_QUADTREE_GRID_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "geo/point.h"
#include "geo/spatial_grid.h"

namespace retrasyn {

struct QuadtreeConfig {
  /// Maximum split depth; the finest leaf is box/2^max_depth per axis and
  /// internal lattice resolution is 2^max_depth. In [1, kMaxDepth].
  uint32_t max_depth = 6;
  /// A node splits while its density mass exceeds this (>= 0).
  double split_threshold = 0.0;

  static constexpr uint32_t kMaxDepth = 10;

  Status Validate() const;
};

/// \brief A density snapshot over a uniform probe lattice: `counts` is
/// row-major k x k over the target box (the exact layout a released per-cell
/// density or a DP'd histogram already has). Values may be negative (noisy);
/// construction clamps them to zero mass.
struct DensitySnapshot {
  uint32_t k = 0;
  std::vector<double> counts;

  Status Validate() const;
};

class QuadtreeGrid : public SpatialGrid {
 public:
  /// Threshold build: split every node with mass > config.split_threshold
  /// down to config.max_depth, then merge all-empty sibling sets. The probe
  /// lattice of \p density need not match 2^max_depth — node masses are
  /// exact area-weighted integrals of the piecewise-constant density field.
  static Result<std::unique_ptr<QuadtreeGrid>> Build(
      const BoundingBox& box, const DensitySnapshot& density,
      const QuadtreeConfig& config);

  /// Greedy build to a leaf budget: repeatedly splits the splittable leaf
  /// with the largest mass (ties: lowest creation order; zero-mass leaves
  /// split last) while at most \p target_leaves leaves result. Yields
  /// target_leaves exactly when (target_leaves - 1) is divisible by 3 and
  /// depth allows; the closest reachable count below otherwise.
  static Result<std::unique_ptr<QuadtreeGrid>> WithTargetLeaves(
      const BoundingBox& box, const DensitySnapshot& density,
      uint32_t target_leaves, uint32_t max_depth);

  GridBackend backend() const override { return GridBackend::kQuadtree; }

  CellId Locate(const Point& p) const override;
  Point CellCenter(CellId c) const override;
  BoundingBox CellBounds(CellId c) const override;
  double Distance(CellId a, CellId b) const override;

  uint32_t max_depth() const { return max_depth_; }
  /// Depth of leaf \p c (0 = the root is the only cell).
  uint32_t LeafDepth(CellId c) const;
  std::string ToString() const override;

 protected:
  void DescribePayload(std::string* out) const override;

 private:
  struct Node {
    uint32_t depth = 0;
    uint32_t ix = 0;  ///< x index at `depth` (column, from box.min_x)
    uint32_t iy = 0;  ///< y index at `depth` (row, from box.min_y)
    int32_t child = -1;  ///< index of first of 4 children; -1 = leaf
    uint32_t leaf = 0;   ///< CellId when leaf
    double mass = 0.0;
  };

  /// A leaf's lattice rectangle at 2^max_depth resolution:
  /// [x0, x0 + span) x [y0, y0 + span).
  struct LeafRect {
    uint32_t x0 = 0;
    uint32_t y0 = 0;
    uint32_t span = 0;
  };

  QuadtreeGrid(const BoundingBox& box, uint32_t max_depth)
      : SpatialGrid(box), max_depth_(max_depth) {}

  /// Numbers leaves pre-order, fills leaf rects + neighbor lists.
  void Finalize();

  uint32_t max_depth_;
  std::vector<Node> nodes_;      ///< nodes_[0] is the root
  std::vector<LeafRect> leaves_; ///< per CellId
  std::vector<uint32_t> leaf_node_;  ///< CellId -> node index
};

}  // namespace retrasyn

#endif  // RETRASYN_GEO_QUADTREE_GRID_H_
