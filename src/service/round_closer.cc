#include "service/round_closer.h"

#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"

namespace retrasyn {

RoundCloser::RoundCloser(Options options, CloseFn close, DeliverFn deliver)
    : options_(options), close_(std::move(close)),
      deliver_(std::move(deliver)) {
  RETRASYN_CHECK(options_.queue_capacity >= 1);
  RETRASYN_CHECK(close_ != nullptr);
  RETRASYN_CHECK(deliver_ != nullptr);
  if (options_.telemetry != nullptr) {
    telemetry_ = options_.telemetry;
    MetricsRegistry& registry = telemetry_->registry();
    queue_depth_metric_ = registry.GetGauge(
        "retrasyn_closer_queue_depth",
        "Sealed rounds waiting for the async closer worker");
    queue_wait_hist_ = registry.GetHistogram(
        "retrasyn_closer_queue_wait_seconds",
        "Time a sealed round waited in the closer queue");
    close_hist_ = registry.GetHistogram(
        "retrasyn_closer_close_seconds",
        "Close-callback duration on the closer worker (Observe + release)");
    backpressure_blocks_metric_ = registry.GetCounter(
        "retrasyn_closer_backpressure_blocks_total",
        "Submit() calls that blocked on a full queue (kBlock policy)");
    poisonings_metric_ = registry.GetCounter(
        "retrasyn_closer_poisonings_total",
        "Pipeline poisonings (close or delivery failures)");
  }
  closer_ = std::thread([this] { CloserLoop(); });
  delivery_ = std::thread([this] { DeliveryLoop(); });
}

RoundCloser::~RoundCloser() {
  {
    MutexLock l(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  closer_.join();
  delivery_.join();
}

void RoundCloser::PoisonLocked(const Status& error) {
  if (error_.ok()) error_ = error;
  finished_ += rounds_.size() + releases_.size();
  rounds_.clear();
  releases_.clear();
  if (poisonings_metric_ != nullptr) poisonings_metric_->Increment();
  if (queue_depth_metric_ != nullptr) queue_depth_metric_->Set(0);
  if (telemetry_ != nullptr) telemetry_->RecordFailure("closer", error);
}

Status RoundCloser::Submit(TimestampBatch batch) {
  MutexLock l(mu_);
  if (!error_.ok()) return error_;
  if (rounds_.size() >= options_.queue_capacity) {
    if (options_.backpressure == BackpressurePolicy::kFailFast) {
      return Status::ResourceExhausted(
          "round queue is full (" + std::to_string(options_.queue_capacity) +
          " sealed batches); the closer has fallen behind — retry the Tick "
          "later or use BackpressurePolicy::kBlock");
    }
    if (backpressure_blocks_metric_ != nullptr) {
      backpressure_blocks_metric_->Increment();
    }
    while (!stop_ && error_.ok() &&
           rounds_.size() >= options_.queue_capacity) {
      cv_.Wait(mu_);
    }
    if (!error_.ok()) return error_;
    if (stop_) return Status::Internal("round closer is shutting down");
  }
  rounds_.push_back(QueuedRound{std::move(batch),
                                std::chrono::steady_clock::now()});
  ++submitted_;
  if (queue_depth_metric_ != nullptr) {
    queue_depth_metric_->Set(static_cast<int64_t>(rounds_.size()));
  }
  cv_.NotifyAll();
  return Status::OK();
}

Status RoundCloser::Drain() {
  MutexLock l(mu_);
  while (!stop_ && finished_ != submitted_) cv_.Wait(mu_);
  if (!error_.ok()) return error_;
  if (finished_ != submitted_) {
    return Status::Internal("round closer stopped with rounds in flight");
  }
  return Status::OK();
}

size_t RoundCloser::in_flight() const {
  MutexLock l(mu_);
  return submitted_ - finished_;
}

Status RoundCloser::deferred_error() const {
  MutexLock l(mu_);
  return error_;
}

void RoundCloser::CloserLoop() {
  // Holds mu_ across iterations with an explicit release window around the
  // close callback; the Lock/Unlock pairing is verified by the thread-safety
  // analysis on every path.
  mu_.Lock();
  for (;;) {
    while (!stop_ && rounds_.empty()) cv_.Wait(mu_);
    if (stop_) break;
    QueuedRound queued = std::move(rounds_.front());
    rounds_.pop_front();
    if (queue_depth_metric_ != nullptr) {
      queue_depth_metric_->Set(static_cast<int64_t>(rounds_.size()));
    }
    cv_.NotifyAll();  // a queue slot freed for a blocked Submit
    mu_.Unlock();
    if (queue_wait_hist_ != nullptr) {
      queue_wait_hist_->Record(std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() -
                                   queued.enqueued)
                                   .count());
    }
    TimestampBatch batch = std::move(queued.batch);
    Stopwatch close_watch;
    Result<RoundRelease> release = close_(batch);
    if (close_hist_ != nullptr) close_hist_->Record(close_watch.ElapsedSeconds());
    if (options_.recycle) options_.recycle(std::move(batch));
    mu_.Lock();
    if (!release.ok()) {
      ++finished_;
      PoisonLocked(release.status());
      cv_.NotifyAll();
      continue;
    }
    if (!error_.ok()) {  // delivery failed while we were closing
      ++finished_;
      cv_.NotifyAll();
      continue;
    }
    if (release.value().density.empty()) {
      // Nothing to deliver (no sink was subscribed at close time); the round
      // is finished without entering the delivery stage.
      ++finished_;
      cv_.NotifyAll();
      continue;
    }
    // The delivery queue is bounded too: a persistently slow sink eventually
    // backpressures the closer, which backpressures Submit.
    while (!stop_ && error_.ok() &&
           releases_.size() >= options_.queue_capacity) {
      cv_.Wait(mu_);
    }
    if (stop_ || !error_.ok()) {
      ++finished_;
      cv_.NotifyAll();
      if (stop_) break;
      continue;
    }
    releases_.push_back(std::move(release).value());
    cv_.NotifyAll();
  }
  mu_.Unlock();
}

void RoundCloser::DeliveryLoop() {
  mu_.Lock();
  int64_t last_t = -1;
  for (;;) {
    while (!stop_ && releases_.empty()) cv_.Wait(mu_);
    if (stop_) break;
    RoundRelease release = std::move(releases_.front());
    releases_.pop_front();
    cv_.NotifyAll();  // a delivery slot freed for the closer
    mu_.Unlock();
    RETRASYN_DCHECK(release.t > last_t);  // strict round order
    last_t = release.t;
    (void)last_t;
    Status st = deliver_(release);
    mu_.Lock();
    ++finished_;
    if (!st.ok()) PoisonLocked(st);
    cv_.NotifyAll();
  }
  mu_.Unlock();
}

}  // namespace retrasyn
