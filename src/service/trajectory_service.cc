#include "service/trajectory_service.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/file_io.h"
#include "common/stopwatch.h"

namespace retrasyn {

namespace {

void HashMix(const void* data, size_t size, uint64_t* h) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < size; ++i) {  // FNV-1a 64
    *h = (*h ^ p[i]) * 1099511628211ull;
  }
}

void HashMixU64(uint64_t v, uint64_t* h) { HashMix(&v, sizeof(v), h); }

void HashMixDouble(double v, uint64_t* h) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  HashMixU64(bits, h);
}

/// Hash of everything the replayed byte stream depends on: the discretized
/// space (box + cell layout fix how raw points resolve to states) plus every
/// engine-config field that steers collection/synthesis. Stamped into each
/// segment header so Recover under a changed deployment fails loudly —
/// replay would still *accept* most events, just resolve them differently.
uint64_t DeploymentFingerprint(const StateSpace& states,
                               const RetraSynConfig& config) {
  uint64_t h = 14695981039346656037ull;
  // The grid's canonical description covers backend kind, bounding box, and
  // the full structural parameters (for the quadtree, every split), so a
  // journal can never be replayed under a different discretization — not
  // even one with an identical cell count.
  const std::string grid_id = states.grid().Describe();
  HashMix(grid_id.data(), grid_id.size(), &h);
  HashMixU64(states.size(), &h);
  HashMixDouble(config.epsilon, &h);
  HashMixU64(static_cast<uint64_t>(config.window), &h);
  HashMixU64(static_cast<uint64_t>(config.division), &h);
  HashMixU64(static_cast<uint64_t>(config.allocation.kind), &h);
  HashMixDouble(config.allocation.max_portion, &h);
  HashMixDouble(config.allocation.min_portion, &h);
  HashMixU64(config.use_dmu ? 1 : 0, &h);
  HashMixU64(config.use_eq ? 1 : 0, &h);
  HashMixDouble(config.lambda, &h);
  HashMixU64(static_cast<uint64_t>(config.collection_mode), &h);
  HashMixU64(static_cast<uint64_t>(config.oracle), &h);
  HashMixU64(static_cast<uint64_t>(config.postprocess), &h);
  HashMixU64(config.seed, &h);
  HashMixU64(static_cast<uint64_t>(config.num_threads), &h);
  HashMixU64(config.use_sampler_cache ? 1 : 0, &h);
  // Recycling changes which stream indices replayed enters resolve to, so a
  // journal must never be replayed under the other setting.
  HashMixU64(config.recycle_stream_indices ? 1 : 0, &h);
  // The shard count fixes the journal layout (which shard stream holds
  // which user's events); replay under a different count would read the
  // wrong streams, so it is refused by fingerprint.
  HashMixU64(static_cast<uint64_t>(config.ingest_shards), &h);
  return h;
}

/// Custom engines (CreateWithEngine/Attach) have no RetraSynConfig; bind
/// the journal to the state space, the engine's self-reported identity, and
/// the shard layout.
uint64_t DeploymentFingerprint(const StateSpace& states,
                               const std::string& engine_name,
                               int ingest_shards) {
  uint64_t h = 14695981039346656037ull;
  const std::string grid_id = states.grid().Describe();
  HashMix(grid_id.data(), grid_id.size(), &h);
  HashMixU64(states.size(), &h);
  HashMix(engine_name.data(), engine_name.size(), &h);
  HashMixU64(static_cast<uint64_t>(ingest_shards), &h);
  return h;
}

/// The physical journal directories for \p options: the configured dir
/// itself for a single shard, one shard-NNN subdirectory per shard
/// otherwise. Empty when journaling is disabled.
std::vector<std::string> JournalDirsFor(const ServiceOptions& options) {
  std::vector<std::string> dirs;
  if (options.journal_dir.empty()) return dirs;
  if (options.ingest_shards == 1) {
    dirs.push_back(options.journal_dir);
    return dirs;
  }
  dirs.reserve(static_cast<size_t>(options.ingest_shards));
  for (int s = 0; s < options.ingest_shards; ++s) {
    dirs.push_back(options.journal_dir + "/" + ShardJournalDirName(s));
  }
  return dirs;
}

std::vector<JournalWriter*> RawJournals(
    const std::vector<std::unique_ptr<JournalWriter>>& journals) {
  std::vector<JournalWriter*> raw;
  raw.reserve(journals.size());
  for (const auto& j : journals) raw.push_back(j.get());
  return raw;
}

/// Refuses a journal whose on-disk layout contradicts the configured shard
/// count — an unsharded journal under ingest_shards > 1, shard
/// subdirectories under ingest_shards == 1, or a shard subdirectory beyond
/// the configured count. A wrong-layout scan would find zero segments and
/// silently recover an empty service; this fails loudly instead (the
/// fingerprint also records the shard count, but it cannot protect a scan
/// that never reads a segment header).
Status CheckJournalLayout(const std::string& root, int ingest_shards) {
  auto files = ListDirectory(root);
  if (!files.ok()) {
    if (files.status().code() == StatusCode::kNotFound) return Status::OK();
    return files.status();
  }
  for (const std::string& name : files.value()) {
    uint64_t segment = 0;
    if (ingest_shards > 1 &&
        JournalWriter::ParseSegmentFileName(name, &segment)) {
      return Status::FailedPrecondition(
          "journal dir " + root + " holds an unsharded journal (" + name +
          ") but the service is configured with ingest_shards = " +
          std::to_string(ingest_shards) +
          "; recover under the shard count that wrote it");
    }
  }
  auto dirs = ListSubdirectories(root);
  if (!dirs.ok()) return dirs.status();
  for (const std::string& name : dirs.value()) {
    int shard = 0;
    if (!ParseShardJournalDirName(name, &shard)) continue;
    if (ingest_shards == 1) {
      return Status::FailedPrecondition(
          "journal dir " + root + " holds a sharded journal (" + name +
          ") but the service is configured unsharded (ingest_shards = 1); "
          "recover under the shard count that wrote it");
    }
    if (shard >= ingest_shards) {
      return Status::FailedPrecondition(
          "journal dir " + root + " holds " + name +
          " but the service is configured with only ingest_shards = " +
          std::to_string(ingest_shards) +
          "; recover under the shard count that wrote it");
    }
  }
  return Status::OK();
}

/// Opens the journal writers for \p options when journaling is enabled —
/// one per ingest shard; an empty vector (OK) when it is not.
/// \p require_fresh rejects a directory that already holds any journal,
/// flat or sharded (the Create factories must not append to a journal they
/// did not replay — Recover owns that path).
Result<std::vector<std::unique_ptr<JournalWriter>>> MaybeOpenJournals(
    const ServiceOptions& options, bool require_fresh, uint64_t fingerprint) {
  std::vector<std::unique_ptr<JournalWriter>> journals;
  if (options.journal_dir.empty()) {
    return journals;
  }
  if (require_fresh) {
    auto names = ListDirectory(options.journal_dir);
    if (names.ok()) {
      for (const std::string& name : names.value()) {
        uint64_t index = 0;
        if (JournalWriter::ParseSegmentFileName(name, &index)) {
          return Status::FailedPrecondition(
              "journal dir " + options.journal_dir +
              " already holds a journal (" + name +
              "); use TrajectoryService::Recover to resume it");
        }
      }
      auto dirs = ListSubdirectories(options.journal_dir);
      if (!dirs.ok()) return dirs.status();
      for (const std::string& name : dirs.value()) {
        int shard = 0;
        if (ParseShardJournalDirName(name, &shard)) {
          return Status::FailedPrecondition(
              "journal dir " + options.journal_dir +
              " already holds a journal (" + name +
              "); use TrajectoryService::Recover to resume it");
        }
      }
    } else if (names.status().code() != StatusCode::kNotFound) {
      return names.status();
    }
  }
  // A sharded layout nests one journal directory per shard under the root;
  // the root itself must exist before the per-shard opens create theirs.
  RETRASYN_RETURN_NOT_OK(CreateDirIfMissing(options.journal_dir));
  JournalOptions journal = options.journal;
  journal.fingerprint = fingerprint;
  for (const std::string& dir : JournalDirsFor(options)) {
    auto writer = JournalWriter::Open(dir, journal);
    if (!writer.ok()) return writer.status();
    journals.push_back(std::move(writer).value());
  }
  return journals;
}

/// The checkpoint subsystem's options from the service's: the same
/// fingerprint the journal stamps, retirement window = the w-event window.
/// The cadence/retention knobs are deliberately NOT fingerprinted — they may
/// change across restarts without invalidating durable state.
CheckpointOptions CheckpointOptionsFor(const ServiceOptions& options,
                                       uint64_t fingerprint,
                                       std::string grid_describe) {
  CheckpointOptions checkpoint;
  checkpoint.dir = options.checkpoint_dir;
  checkpoint.every_rounds = options.checkpoint_every_rounds;
  checkpoint.retain = options.checkpoint_retain;
  checkpoint.spill_history = options.checkpoint_spill_history;
  checkpoint.fingerprint = fingerprint;
  checkpoint.grid_describe = std::move(grid_describe);
  checkpoint.window = options.recycle_window;
  checkpoint.journal_dirs = JournalDirsFor(options);
  return checkpoint;
}

/// Checkpointing serializes the engine's dense state, which only a
/// RetraSynEngine can do; a custom engine must keep the full-replay model.
Status CheckCheckpointable(const ServiceOptions& options,
                           const StreamReleaseEngine* engine) {
  if (options.checkpoint_every_rounds > 0 &&
      dynamic_cast<const RetraSynEngine*>(engine) == nullptr) {
    return Status::InvalidArgument(
        "checkpointing requires a RetraSynEngine (custom engines have no "
        "serializable checkpoint state); leave checkpoint_every_rounds at 0");
  }
  return Status::OK();
}

/// Opens the checkpoint manager when checkpointing is enabled; nullptr (OK)
/// when it is not. Runs BEFORE the journal writer opens so a stale
/// checkpoint directory is refused without leaving a fresh journal segment
/// behind.
Result<std::unique_ptr<CheckpointManager>> MaybeOpenCheckpoints(
    const ServiceOptions& options, const StateSpace& states,
    uint64_t fingerprint, bool require_fresh) {
  if (options.checkpoint_every_rounds <= 0) {
    return std::unique_ptr<CheckpointManager>();
  }
  return CheckpointManager::Open(
      CheckpointOptionsFor(options, fingerprint, states.grid().Describe()),
      require_fresh);
}

}  // namespace

TrajectoryService::TrajectoryService(
    const StateSpace& states, std::unique_ptr<StreamReleaseEngine> owned,
    StreamReleaseEngine* engine, const ServiceOptions& options,
    std::vector<std::unique_ptr<JournalWriter>> journals,
    bool defer_async_closer)
    : states_(&states),
      owned_engine_(std::move(owned)),
      engine_(engine),
      journals_(std::move(journals)) {
  retrasyn_ = dynamic_cast<const RetraSynEngine*>(engine_);
  retrasyn_mutable_ = dynamic_cast<RetraSynEngine*>(engine_);
  if (options.enable_telemetry) {
    telemetry_ = std::make_unique<Telemetry>();
    MetricsRegistry& registry = telemetry_->registry();
    close_hist_ = registry.GetHistogram(
        "retrasyn_service_close_seconds",
        "Round close step (engine Observe + release construction)");
    deliver_hist_ = registry.GetHistogram(
        "retrasyn_service_delivery_seconds",
        "Sink fan-out for one round's release");
    trace_ = &telemetry_->trace();
    engine_->AttachTelemetry(telemetry_.get());
    for (std::unique_ptr<JournalWriter>& journal : journals_) {
      journal->AttachTelemetry(telemetry_.get());
    }
  }
  IngestSessionOptions session_options;
  session_options.recycle_stream_indices = options.recycle_stream_indices;
  session_options.window = options.recycle_window;
  session_options.num_shards = options.ingest_shards;
  session_options.reuse_seal_buffers = options.reuse_seal_buffers;
  session_options.telemetry = telemetry_.get();
  session_ = std::make_unique<IngestSession>(
      states, [this](TimestampBatch batch) { return OnRound(std::move(batch)); },
      session_options);
  if (!journals_.empty()) session_->AttachJournals(RawJournals(journals_));
  if (options.checkpoint_every_rounds > 0) {
    // The session half of a due checkpoint, captured on the ingest thread the
    // moment the round boundary is durable in the journal (the hook only
    // fires for journaled boundaries). checkpoint_ attaches after
    // construction — and stays null throughout recovery replay, so replay
    // never rewrites checkpoints — hence the re-check at fire time.
    session_->SetRoundCommitHook([this](int64_t sealed_round) {
      if (checkpoint_ != nullptr && checkpoint_->DueAt(sealed_round)) {
        checkpoint_->OnRoundCommitted(sealed_round,
                                      session_->SaveCheckpointState());
      }
    });
  }
  if (options.sync_policy == SyncPolicy::kAsync && !defer_async_closer) {
    ArmCloser(options);
  }
}

void TrajectoryService::ArmCloser(const ServiceOptions& options) {
  RoundCloser::Options closer_options;
  closer_options.queue_capacity =
      static_cast<size_t>(options.round_queue_capacity);
  closer_options.backpressure = options.backpressure;
  closer_options.recycle = [this](TimestampBatch&& batch) {
    session_->RecycleBatch(std::move(batch));
  };
  closer_options.telemetry = telemetry_.get();
  closer_ = std::make_unique<RoundCloser>(
      closer_options,
      [this](const TimestampBatch& batch) { return CloseRound(batch); },
      [this](const RoundRelease& round) { return Deliver(round); });
}

TrajectoryService::~TrajectoryService() {
  // Stop the async workers before the engine and session they close over;
  // the closer first (it hands the checkpoint manager engine halves), then
  // the checkpoint worker (it drains sealed segments from the journal).
  closer_.reset();
  checkpoint_.reset();
}

ServiceOptions ServiceOptions::FromConfig(const RetraSynConfig& config) {
  ServiceOptions options;
  options.sync_policy = config.sync_policy;
  options.round_queue_capacity = config.round_queue_capacity;
  options.backpressure = config.backpressure;
  options.ingest_shards = config.ingest_shards;
  options.reuse_seal_buffers = config.reuse_seal_buffers;
  options.journal_dir = config.journal_dir;
  options.journal.fsync = config.journal_fsync;
  options.journal.segment_bytes = config.journal_segment_bytes;
  options.recycle_stream_indices = config.recycle_stream_indices;
  options.recycle_window = config.window;
  options.checkpoint_every_rounds = config.checkpoint_every_rounds;
  options.checkpoint_dir = config.checkpoint_dir;
  options.checkpoint_retain = config.checkpoint_retain;
  options.checkpoint_spill_history = config.checkpoint_spill_history;
  options.enable_telemetry = config.enable_telemetry;
  return options;
}

Status ServiceOptions::Validate() const {
  if (round_queue_capacity < 1) {
    return Status::InvalidArgument(
        "round_queue_capacity must be >= 1 sealed batch, got " +
        std::to_string(round_queue_capacity));
  }
  if (ingest_shards < 1 || ingest_shards > RetraSynConfig::kMaxIngestShards) {
    return Status::InvalidArgument(
        "ingest_shards must be in [1, " +
        std::to_string(RetraSynConfig::kMaxIngestShards) + "], got " +
        std::to_string(ingest_shards));
  }
  if (!journal_dir.empty()) {
    RETRASYN_RETURN_NOT_OK(journal.Validate());
  }
  if (recycle_stream_indices && recycle_window < 1) {
    return Status::InvalidArgument(
        "recycle_stream_indices requires recycle_window >= 1 (the w-event "
        "window governing when a quitted stream's index retires), got " +
        std::to_string(recycle_window));
  }
  if (checkpoint_every_rounds < 0) {
    return Status::InvalidArgument(
        "checkpoint_every_rounds must be >= 0 (0 disables checkpointing), "
        "got " +
        std::to_string(checkpoint_every_rounds));
  }
  if (checkpoint_every_rounds > 0) {
    if (journal_dir.empty()) {
      return Status::InvalidArgument(
          "checkpointing requires a journal (journal_dir): a checkpoint only "
          "bridges recovery to the journal suffix behind it");
    }
    RETRASYN_RETURN_NOT_OK(CheckpointOptionsFor(*this, 0, "").Validate());
  }
  return Status::OK();
}

Result<std::unique_ptr<TrajectoryService>> TrajectoryService::Create(
    const StateSpace& states, const RetraSynConfig& config) {
  RETRASYN_RETURN_NOT_OK(config.Validate());
  const ServiceOptions options = ServiceOptions::FromConfig(config);
  RETRASYN_RETURN_NOT_OK(options.Validate());
  const uint64_t fingerprint = DeploymentFingerprint(states, config);
  auto checkpoint =
      MaybeOpenCheckpoints(options, states, fingerprint, /*require_fresh=*/true);
  if (!checkpoint.ok()) return checkpoint.status();
  auto journals =
      MaybeOpenJournals(options, /*require_fresh=*/true, fingerprint);
  if (!journals.ok()) return journals.status();
  auto engine = std::make_unique<RetraSynEngine>(states, config);
  StreamReleaseEngine* raw = engine.get();
  std::unique_ptr<TrajectoryService> service(
      new TrajectoryService(states, std::move(engine), raw, options,
                            std::move(journals).value()));
  if (checkpoint.value() != nullptr) {
    service->checkpoint_ = std::move(checkpoint).value();
    service->checkpoint_->AttachJournals(RawJournals(service->journals_));
    service->checkpoint_->AttachTelemetry(service->telemetry_.get());
  }
  return service;
}

Result<std::unique_ptr<TrajectoryService>> TrajectoryService::CreateWithEngine(
    const StateSpace& states, std::unique_ptr<StreamReleaseEngine> engine,
    const ServiceOptions& options) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must not be null");
  }
  RETRASYN_RETURN_NOT_OK(options.Validate());
  RETRASYN_RETURN_NOT_OK(CheckCheckpointable(options, engine.get()));
  const uint64_t fingerprint =
      DeploymentFingerprint(states, engine->name(), options.ingest_shards);
  auto checkpoint =
      MaybeOpenCheckpoints(options, states, fingerprint, /*require_fresh=*/true);
  if (!checkpoint.ok()) return checkpoint.status();
  auto journals =
      MaybeOpenJournals(options, /*require_fresh=*/true, fingerprint);
  if (!journals.ok()) return journals.status();
  StreamReleaseEngine* raw = engine.get();
  std::unique_ptr<TrajectoryService> service(
      new TrajectoryService(states, std::move(engine), raw, options,
                            std::move(journals).value()));
  if (checkpoint.value() != nullptr) {
    service->checkpoint_ = std::move(checkpoint).value();
    service->checkpoint_->AttachJournals(RawJournals(service->journals_));
    service->checkpoint_->AttachTelemetry(service->telemetry_.get());
  }
  return service;
}

Result<std::unique_ptr<TrajectoryService>> TrajectoryService::Attach(
    const StateSpace& states, StreamReleaseEngine* engine,
    const ServiceOptions& options) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must not be null");
  }
  RETRASYN_RETURN_NOT_OK(options.Validate());
  RETRASYN_RETURN_NOT_OK(CheckCheckpointable(options, engine));
  const uint64_t fingerprint =
      DeploymentFingerprint(states, engine->name(), options.ingest_shards);
  auto checkpoint =
      MaybeOpenCheckpoints(options, states, fingerprint, /*require_fresh=*/true);
  if (!checkpoint.ok()) return checkpoint.status();
  auto journals =
      MaybeOpenJournals(options, /*require_fresh=*/true, fingerprint);
  if (!journals.ok()) return journals.status();
  std::unique_ptr<TrajectoryService> service(
      new TrajectoryService(states, nullptr, engine, options,
                            std::move(journals).value()));
  if (checkpoint.value() != nullptr) {
    service->checkpoint_ = std::move(checkpoint).value();
    service->checkpoint_->AttachJournals(RawJournals(service->journals_));
    service->checkpoint_->AttachTelemetry(service->telemetry_.get());
  }
  return service;
}

Result<std::unique_ptr<TrajectoryService>> TrajectoryService::Recover(
    const StateSpace& states, const RetraSynConfig& config) {
  RETRASYN_RETURN_NOT_OK(config.Validate());
  if (config.journal_dir.empty()) {
    return Status::InvalidArgument(
        "Recover requires RetraSynConfig::journal_dir");
  }
  const ServiceOptions options = ServiceOptions::FromConfig(config);
  auto engine = std::make_unique<RetraSynEngine>(states, config);
  StreamReleaseEngine* raw = engine.get();
  return RecoverImpl(states, std::move(engine), raw, options,
                     DeploymentFingerprint(states, config));
}

Result<std::unique_ptr<TrajectoryService>> TrajectoryService::RecoverWithEngine(
    const StateSpace& states, std::unique_ptr<StreamReleaseEngine> engine,
    const ServiceOptions& options) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must not be null");
  }
  StreamReleaseEngine* raw = engine.get();
  const uint64_t fingerprint =
      DeploymentFingerprint(states, raw->name(), options.ingest_shards);
  return RecoverImpl(states, std::move(engine), raw, options, fingerprint);
}

Result<std::unique_ptr<TrajectoryService>> TrajectoryService::RecoverAttached(
    const StateSpace& states, StreamReleaseEngine* engine,
    const ServiceOptions& options) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must not be null");
  }
  return RecoverImpl(states, nullptr, engine, options,
                     DeploymentFingerprint(states, engine->name(),
                                           options.ingest_shards));
}

Result<std::unique_ptr<TrajectoryService>> TrajectoryService::RecoverImpl(
    const StateSpace& states, std::unique_ptr<StreamReleaseEngine> owned,
    StreamReleaseEngine* engine, const ServiceOptions& options,
    uint64_t fingerprint) {
  if (options.journal_dir.empty()) {
    return Status::InvalidArgument("Recover requires a journal_dir");
  }
  RETRASYN_RETURN_NOT_OK(options.Validate());

  // Refuse a layout that contradicts the configured shard count before a
  // single record is read.
  RETRASYN_RETURN_NOT_OK(CreateDirIfMissing(options.journal_dir));
  RETRASYN_RETURN_NOT_OK(
      CheckJournalLayout(options.journal_dir, options.ingest_shards));
  const std::vector<std::string> dirs = JournalDirsFor(options);

  // Take every existing shard's writer lock BEFORE the destructive
  // scans/truncates: if the crashed process is in fact still alive and
  // appending (a supervisor restart race), reading its segments mid-write
  // would misdiagnose a torn tail and truncate away durably acknowledged
  // records. Directories that do not exist yet are NOT created here — a
  // Recover that is about to be refused (wrong fingerprint, wrong layout)
  // must leave the directory tree exactly as it found it.
  std::vector<FileLock> locks(dirs.size());
  std::vector<bool> existed(dirs.size(), false);
  std::vector<JournalScan> scans(dirs.size());
  for (size_t s = 0; s < dirs.size(); ++s) {
    auto probe = ListDirectory(dirs[s]);
    if (!probe.ok()) {
      if (probe.status().code() == StatusCode::kNotFound) continue;
      return probe.status();
    }
    existed[s] = true;
    auto lock = FileLock::Acquire(dirs[s] + "/" + JournalWriter::kLockFileName);
    if (!lock.ok()) return lock.status();
    locks[s] = std::move(lock).value();
    auto scan_result = JournalReader::ScanDir(dirs[s]);
    if (!scan_result.ok()) return scan_result.status();
    JournalScan scan = std::move(scan_result).value();
    if (scan.has_fingerprint && scan.fingerprint != fingerprint) {
      return Status::FailedPrecondition(
          "journal in " + dirs[s] +
          " was written by a different deployment (state space / engine "
          "config / shard count changed); replaying it here would silently "
          "diverge");
    }
    if (scan.torn) {
      // Cut the torn tail physically so the on-disk journal is clean before
      // a single new byte is appended after it.
      RETRASYN_RETURN_NOT_OK(
          TruncateFile(scan.torn_segment, scan.valid_tail_size));
    }
    scans[s] = std::move(scan);
  }

  // Rounds durable in one scanned shard journal.
  auto closed_rounds = [](const JournalScan& scan) {
    int64_t round = scan.base_round;
    for (const JournalEvent& e : scan.events) {
      if (e.type == JournalEventType::kTick) {
        ++round;
      } else if (e.type == JournalEventType::kAdvanceTo) {
        round = std::max(round, e.target_t);
      }
    }
    return round;
  };

  // Durable rounds for the deployment = the minimum across shards: a round
  // only counts once its boundary reached every shard's journal. A shard
  // can be at most one boundary ahead — a crash or I/O failure between the
  // per-shard boundary appends, after which the session refuses every
  // event — so the orphaned trailing boundary is dropped physically (and
  // the header-only segment a rotation may have opened right after it),
  // restoring the all-journals-agree invariant before the new writers
  // append a byte. Anything else is real inter-journal corruption.
  int64_t min_closed = closed_rounds(scans.front());
  for (const JournalScan& scan : scans) {
    min_closed = std::min(min_closed, closed_rounds(scan));
  }
  for (size_t s = 0; s < scans.size(); ++s) {
    int drops = 0;
    while (closed_rounds(scans[s]) > min_closed) {
      if (++drops > 1 || scans[s].events.empty() ||
          scans[s].events.back().type != JournalEventType::kTick) {
        return Status::IOError(
            "journal in " + dirs[s] + " closed " +
            std::to_string(closed_rounds(scans[s]) - min_closed) +
            " round(s) its sibling shards never did; the shard journals are "
            "inconsistent beyond the single-boundary skew a crash can cause");
      }
      const std::string& segment_path = scans[s].last_record_segment;
      const std::string segment_name =
          segment_path.substr(segment_path.find_last_of('/') + 1);
      uint64_t boundary_segment = 0;
      if (!JournalWriter::ParseSegmentFileName(segment_name,
                                               &boundary_segment)) {
        return Status::Internal("unparseable journal segment path " +
                                segment_path);
      }
      bool removed = false;
      for (const ScannedSegment& segment : scans[s].segments) {
        if (segment.index > boundary_segment) {
          RETRASYN_RETURN_NOT_OK(RemoveFile(
              dirs[s] + "/" + JournalWriter::SegmentFileName(segment.index)));
          removed = true;
        }
      }
      if (removed) RETRASYN_RETURN_NOT_OK(SyncDir(dirs[s]));
      RETRASYN_RETURN_NOT_OK(
          TruncateFile(segment_path, scans[s].last_record_offset));
      auto rescan = JournalReader::ScanDir(dirs[s]);
      if (!rescan.ok()) return rescan.status();
      scans[s] = std::move(rescan).value();
    }
  }

  // Load the newest usable checkpoint (checkpointing configured only). A
  // structurally valid checkpoint under the wrong fingerprint fails loudly
  // here — never a silent fall-through to full replay.
  RETRASYN_RETURN_NOT_OK(CheckCheckpointable(options, engine));
  CheckpointState ckpt;
  bool have_checkpoint = false;
  std::vector<int64_t> surviving;
  int corrupt_skipped = 0;
  if (options.checkpoint_every_rounds > 0) {
    auto loaded = CheckpointManager::LoadForRecovery(options.checkpoint_dir,
                                                     fingerprint, &surviving,
                                                     &corrupt_skipped);
    if (loaded.ok()) {
      ckpt = std::move(loaded).value();
      // The fingerprint gate above already hashes the grid description;
      // comparing the round-tripped bytes verbatim keeps recovery honest
      // even against a (hypothetical) hash collision and gives the refusal
      // a precise message.
      if (ckpt.grid_describe != states.grid().Describe()) {
        return Status::FailedPrecondition(
            "checkpoint in " + options.checkpoint_dir +
            " was captured under a different spatial grid than the running "
            "deployment (" + states.grid().ToString() +
            "); recovery under a changed discretization is refused");
      }
      have_checkpoint = true;
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      return loaded.status();
    }
  }
  int64_t max_base = 0;
  for (const JournalScan& scan : scans) {
    max_base = std::max(max_base, scan.base_round);
  }
  if (!have_checkpoint && max_base > 0) {
    return Status::IOError(
        "journal in " + options.journal_dir + " was compacted past round " +
        std::to_string(max_base) +
        " but no usable checkpoint covers the retired prefix (checkpoint "
        "directory missing, wiped, or checkpointing disabled); the service "
        "cannot be reconstructed");
  }
  if (have_checkpoint && ckpt.round < max_base) {
    return Status::IOError(
        "newest usable checkpoint (round " + std::to_string(ckpt.round) +
        ") predates the journal's compaction base (round " +
        std::to_string(max_base) +
        "); the rounds between them are unrecoverable");
  }

  // Replay inline — the closer stays un-armed even under kAsync, and the
  // journals stay detached so replayed events are not re-journaled. With a
  // checkpoint, restore its state first and replay only the journal suffix
  // behind its round.
  std::unique_ptr<TrajectoryService> service(
      new TrajectoryService(states, std::move(owned), engine, options,
                            /*journals=*/{}, /*defer_async_closer=*/true));
  int64_t resume_round = max_base;
  if (have_checkpoint) {
    resume_round = ckpt.round;
    RETRASYN_RETURN_NOT_OK(service->retrasyn_mutable_->RestoreCheckpointState(
        std::move(ckpt.engine)));
    RETRASYN_RETURN_NOT_OK(
        service->session_->RestoreCheckpointState(std::move(ckpt.session)));
  }
  RETRASYN_RETURN_NOT_OK(
      service->ReplayJournals(scans, resume_round, min_closed));

  // Re-arm: async closing per the config, then the journal writers, which
  // adopt the held locks and continue in fresh segments after the replayed
  // ones (their round accounting continues from the replayed total).
  if (options.sync_policy == SyncPolicy::kAsync) service->ArmCloser(options);
  JournalOptions journal_options = options.journal;
  journal_options.fingerprint = fingerprint;
  for (size_t s = 0; s < dirs.size(); ++s) {
    if (!existed[s]) {
      // Deferred until every validation passed: a refused Recover must not
      // scatter fresh shard directories under the journal root.
      RETRASYN_RETURN_NOT_OK(CreateDirIfMissing(dirs[s]));
      auto lock =
          FileLock::Acquire(dirs[s] + "/" + JournalWriter::kLockFileName);
      if (!lock.ok()) return lock.status();
      locks[s] = std::move(lock).value();
    }
    auto writer = JournalWriter::OpenLocked(dirs[s], journal_options,
                                            std::move(locks[s]));
    if (!writer.ok()) return writer.status();
    writer.value()->set_base_round(service->rounds_closed());
    writer.value()->AttachTelemetry(service->telemetry_.get());
    service->journals_.push_back(std::move(writer).value());
  }
  service->session_->AttachJournals(RawJournals(service->journals_));
  if (service->telemetry_ != nullptr) {
    // The recovery fallback-ladder depth: how many corrupt checkpoints
    // LoadForRecovery deleted before finding a usable one (0 on a clean
    // recovery or when checkpointing is off).
    service->telemetry_->registry()
        .GetGauge("retrasyn_recovery_corrupt_checkpoints_skipped",
                  "Corrupt checkpoints deleted by the last recovery's "
                  "newest-first fallback ladder")
        ->Set(corrupt_skipped);
  }

  // Finally the checkpoint subsystem, seeded with the recovered manifest,
  // the surviving checkpoints, and the scanned segments (its future
  // retirement candidates, per shard journal).
  if (options.checkpoint_every_rounds > 0) {
    auto manager =
        MaybeOpenCheckpoints(options, states, fingerprint, /*require_fresh=*/false);
    if (!manager.ok()) return manager.status();
    service->checkpoint_ = std::move(manager).value();
    service->checkpoint_->AttachJournals(RawJournals(service->journals_));
    service->checkpoint_->AttachTelemetry(service->telemetry_.get());
    std::vector<std::vector<ScannedSegment>> segments_per_journal;
    segments_per_journal.reserve(scans.size());
    for (const JournalScan& scan : scans) {
      segments_per_journal.push_back(scan.segments);
    }
    RETRASYN_RETURN_NOT_OK(service->checkpoint_->SeedRecovered(
        ckpt, std::move(surviving), segments_per_journal));
  }
  return service;
}

Status TrajectoryService::ReplayJournals(const std::vector<JournalScan>& scans,
                                         int64_t resume_round,
                                         int64_t target_round) {
  // Bucket each shard's events by the round they belong to, numbering from
  // that journal's own base round (per-shard BASE files may differ — shard
  // segment sizes do). A kTick boundary closes one bucket; a kAdvanceTo
  // closes through its target, leaving empty buckets for the skipped
  // rounds (the session itself only ever journals kTick, but the codec
  // admits kAdvanceTo, so replay handles it). The final bucket holds the
  // open round's trailing events.
  struct ShardBuckets {
    int64_t base = 0;
    std::vector<std::vector<const JournalEvent*>> rounds;
  };
  std::vector<ShardBuckets> shards(scans.size());
  for (size_t s = 0; s < scans.size(); ++s) {
    ShardBuckets& shard = shards[s];
    shard.base = scans[s].base_round;
    shard.rounds.emplace_back();
    for (const JournalEvent& e : scans[s].events) {
      if (e.type == JournalEventType::kTick) {
        shard.rounds.emplace_back();
      } else if (e.type == JournalEventType::kAdvanceTo) {
        const int64_t current =
            shard.base + static_cast<int64_t>(shard.rounds.size()) - 1;
        for (int64_t r = current; r < e.target_t; ++r) {
          shard.rounds.emplace_back();
        }
      } else {
        shard.rounds.back().push_back(&e);
      }
    }
  }

  auto feed = [this](const JournalEvent& e) -> Status {
    Status st;
    switch (e.type) {
      case JournalEventType::kEnter:
        st = session_->Enter(e.user, e.location);
        break;
      case JournalEventType::kMove:
        st = session_->Move(e.user, e.location);
        break;
      case JournalEventType::kQuit:
        st = session_->Quit(e.user);
        break;
      default:
        st = Status::Internal("round boundary inside a replay bucket");
        break;
    }
    if (!st.ok()) {
      // The journal only ever holds events the session accepted, so a
      // rejection means the journal does not match this config/state space.
      return Status::Internal("journal replay rejected a " +
                              std::string(JournalEventTypeName(e.type)) +
                              " record: " + st.message());
    }
    return st;
  };

  // Closed rounds in lockstep across shards. Rounds before resume_round are
  // skipped — a restored checkpoint already holds their effect. Users are
  // disjoint across shards and arrival order within a round never affects
  // the sealed batch, so feeding whole shard buckets in shard order
  // reproduces the exact batches the original merge sealed.
  target_round = std::max(target_round, resume_round);
  for (int64_t r = resume_round; r < target_round; ++r) {
    for (const ShardBuckets& shard : shards) {
      const int64_t i = r - shard.base;
      if (i < 0 || i >= static_cast<int64_t>(shard.rounds.size())) continue;
      for (const JournalEvent* e : shard.rounds[static_cast<size_t>(i)]) {
        RETRASYN_RETURN_NOT_OK(feed(*e));
      }
    }
    Status ticked = session_->Tick();
    if (!ticked.ok()) {
      return Status::Internal("journal replay could not close round " +
                              std::to_string(r) + ": " + ticked.message());
    }
  }
  // Trailing events: rounds at/after target_round never closed durably on
  // every shard, so their events re-buffer into the reopened round.
  for (const ShardBuckets& shard : shards) {
    for (int64_t i = target_round - shard.base;
         i < static_cast<int64_t>(shard.rounds.size()); ++i) {
      if (i < 0) continue;
      for (const JournalEvent* e : shard.rounds[static_cast<size_t>(i)]) {
        RETRASYN_RETURN_NOT_OK(feed(*e));
      }
    }
  }
  return Status::OK();
}

void TrajectoryService::AddSink(ReleaseSink* sink) {
  if (sink == nullptr) return;
  MutexLock l(sinks_mu_);
  sinks_.push_back(sink);
}

Status TrajectoryService::OnRound(TimestampBatch batch) {
  // A poisoned checkpoint subsystem fails the Tick cleanly BEFORE the round
  // is consumed: the session rolls back, the journal is untouched, and the
  // journal always outruns the checkpoints — Recover loses nothing.
  if (checkpoint_ != nullptr) RETRASYN_RETURN_NOT_OK(checkpoint_->status());
  if (closer_ != nullptr) return closer_->Submit(std::move(batch));
  // Surface a previous sink failure before consuming another round, mirroring
  // the async pipeline's poisoned state.
  RETRASYN_RETURN_NOT_OK(inline_error_);
  Result<RoundRelease> release = CloseRound(batch);
  // The engine copied what it needs; the observation buffer goes back to the
  // session's pool either way (a failed close re-seals from pending state).
  session_->RecycleBatch(std::move(batch));
  if (!release.ok()) return release.status();
  if (release.value().density.empty()) return Status::OK();  // no sinks
  // The engine has consumed the round; a sink failure past this point must
  // NOT fail this Tick() (the session would roll back and a retry would
  // double-observe the batch). Record it sticky instead: it surfaces on the
  // next Tick()/Drain()/SnapshotRelease, exactly like an async failure.
  Status delivered = Deliver(release.value());
  if (!delivered.ok()) {
    inline_error_ = delivered;
    if (telemetry_ != nullptr) {
      telemetry_->RecordFailure("inline_delivery", delivered,
                                release.value().t);
    }
  }
  return Status::OK();
}

Result<RoundRelease> TrajectoryService::CloseRound(const TimestampBatch& batch) {
  Stopwatch close_watch;
  engine_->Observe(batch);
  RoundRelease round;
  round.t = batch.t;
  // Surface the engine's retired-index set on the round-handler path. Under
  // SyncPolicy::kAsync both the retire (inside Observe) and this copy happen
  // on the closer worker — the ingest thread's own, independently derived
  // retirement never races it.
  if (retrasyn_ != nullptr) round.retired = retrasyn_->retired_last_round();
  if (checkpoint_ != nullptr && checkpoint_->DueAt(batch.t)) {
    // Engine half of the due checkpoint, captured right after Observe on the
    // round-closing thread. Spilling first keeps the dense state and the
    // spill manifest disjoint: the checkpoint's finished set excludes every
    // stream the spill registry now owns.
    std::vector<CellStream> spilled;
    if (checkpoint_->options().spill_history) {
      spilled = retrasyn_mutable_->TakeFinishedStreams();
    }
    checkpoint_->OnRoundClosed(batch.t,
                               retrasyn_mutable_->SaveCheckpointState(),
                               std::move(spilled));
  }
  bool have_sinks;
  {
    MutexLock l(sinks_mu_);
    have_sinks = !sinks_.empty();
  }
  // With no sink subscribed at close time there is nobody to consume the
  // release; the empty density is the skip-delivery sentinel (a real grid
  // always has >= 1 cell). A sink added later starts with the next round
  // closed after the subscription.
  if (have_sinks) {
    round.density = engine_->LiveDensity();
    for (uint32_t c : round.density) round.active += c;
  }
  if (close_hist_ != nullptr) {
    const double close_seconds = close_watch.ElapsedSeconds();
    close_hist_->Record(close_seconds);
    trace_->RecordPhase(batch.t, RoundPhase::kClose, close_seconds);
  }
  return round;
}

Status TrajectoryService::Deliver(const RoundRelease& round) {
  std::vector<ReleaseSink*> sinks;
  {
    MutexLock l(sinks_mu_);
    sinks = sinks_;
  }
  Stopwatch deliver_watch;
  for (ReleaseSink* sink : sinks) {
    RETRASYN_RETURN_NOT_OK(sink->OnRound(round));
  }
  if (deliver_hist_ != nullptr) {
    const double deliver_seconds = deliver_watch.ElapsedSeconds();
    deliver_hist_->Record(deliver_seconds);
    trace_->RecordPhase(round.t, RoundPhase::kDeliver, deliver_seconds);
  }
  return Status::OK();
}

TelemetrySnapshot TrajectoryService::telemetry() const {
  if (telemetry_ == nullptr) return TelemetrySnapshot();
  return telemetry_->Snapshot();
}

Status TrajectoryService::Drain() {
  RETRASYN_RETURN_NOT_OK(closer_ == nullptr ? inline_error_
                                            : closer_->Drain());
  // Checkpoint barrier: every captured round durable (or the sticky failure
  // surfaced) before Drain reports clean.
  if (checkpoint_ != nullptr) return checkpoint_->WaitIdle();
  return Status::OK();
}

Result<CellStreamSet> TrajectoryService::SnapshotRelease() const {
  return SnapshotRelease(rounds_closed());
}

Result<CellStreamSet> TrajectoryService::SnapshotRelease(
    int64_t num_timestamps) const {
  if (rounds_closed() < 1) {
    return Status::FailedPrecondition(
        "no rounds closed yet; Tick() the session before snapshotting");
  }
  if (num_timestamps < rounds_closed()) {
    return Status::InvalidArgument(
        "snapshot horizon " + std::to_string(num_timestamps) +
        " does not cover the " + std::to_string(rounds_closed()) +
        " closed rounds");
  }
  if (closer_ == nullptr) {
    RETRASYN_RETURN_NOT_OK(inline_error_);
  } else {
    // Order matters: once in_flight() reads 0 (and this thread is the only
    // submitter), every round has fully settled, so a failure among them is
    // already recorded by the time deferred_error() is read. The reverse
    // order would let a failure land between the two reads and hand out an
    // OK snapshot over an engine that silently dropped rounds.
    const size_t in_flight = closer_->in_flight();
    if (in_flight > 0) {
      return Status::FailedPrecondition(
          "async round closing is still in flight (" +
          std::to_string(in_flight) +
          " rounds); Drain() the service before snapshotting");
    }
    RETRASYN_RETURN_NOT_OK(closer_->deferred_error());
  }
  if (checkpoint_ != nullptr && checkpoint_->has_spilled_history()) {
    // Spilled history first (ascending checkpoint round, original order
    // within), then the engine's remaining finished + live streams: the
    // concatenation reproduces the no-spill snapshot byte-for-byte.
    CellStreamSet merged(num_timestamps);
    RETRASYN_RETURN_NOT_OK(checkpoint_->AppendSpilledHistory(&merged));
    const CellStreamSet rest = engine_->SnapshotRelease(num_timestamps);
    for (const CellStream& s : rest.streams()) {
      RETRASYN_RETURN_NOT_OK(merged.Add(s));
    }
    return merged;
  }
  return engine_->SnapshotRelease(num_timestamps);
}

}  // namespace retrasyn
