#include "service/trajectory_service.h"

#include <string>
#include <utility>

namespace retrasyn {

TrajectoryService::TrajectoryService(const StateSpace& states,
                                     std::unique_ptr<StreamReleaseEngine> owned,
                                     StreamReleaseEngine* engine)
    : states_(&states), owned_engine_(std::move(owned)), engine_(engine) {
  retrasyn_ = dynamic_cast<const RetraSynEngine*>(engine_);
  session_ = std::make_unique<IngestSession>(
      states, [this](const TimestampBatch& batch) { return OnRound(batch); });
}

Result<std::unique_ptr<TrajectoryService>> TrajectoryService::Create(
    const StateSpace& states, const RetraSynConfig& config) {
  RETRASYN_RETURN_NOT_OK(config.Validate());
  auto engine = std::make_unique<RetraSynEngine>(states, config);
  StreamReleaseEngine* raw = engine.get();
  return std::unique_ptr<TrajectoryService>(
      new TrajectoryService(states, std::move(engine), raw));
}

Result<std::unique_ptr<TrajectoryService>> TrajectoryService::CreateWithEngine(
    const StateSpace& states, std::unique_ptr<StreamReleaseEngine> engine) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must not be null");
  }
  StreamReleaseEngine* raw = engine.get();
  return std::unique_ptr<TrajectoryService>(
      new TrajectoryService(states, std::move(engine), raw));
}

Result<std::unique_ptr<TrajectoryService>> TrajectoryService::Attach(
    const StateSpace& states, StreamReleaseEngine* engine) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must not be null");
  }
  return std::unique_ptr<TrajectoryService>(
      new TrajectoryService(states, nullptr, engine));
}

void TrajectoryService::AddSink(ReleaseSink* sink) {
  if (sink != nullptr) sinks_.push_back(sink);
}

Status TrajectoryService::OnRound(const TimestampBatch& batch) {
  engine_->Observe(batch);
  if (!sinks_.empty()) {
    RoundRelease round;
    round.t = batch.t;
    round.density = engine_->LiveDensity();
    for (uint32_t c : round.density) round.active += c;
    for (ReleaseSink* sink : sinks_) sink->OnRound(round);
  }
  return Status::OK();
}

Result<CellStreamSet> TrajectoryService::SnapshotRelease() const {
  return SnapshotRelease(rounds_closed());
}

Result<CellStreamSet> TrajectoryService::SnapshotRelease(
    int64_t num_timestamps) const {
  if (rounds_closed() < 1) {
    return Status::FailedPrecondition(
        "no rounds closed yet; Tick() the session before snapshotting");
  }
  if (num_timestamps < rounds_closed()) {
    return Status::InvalidArgument(
        "snapshot horizon " + std::to_string(num_timestamps) +
        " does not cover the " + std::to_string(rounds_closed()) +
        " closed rounds");
  }
  return engine_->SnapshotRelease(num_timestamps);
}

}  // namespace retrasyn
