#include "service/trajectory_service.h"

#include <string>
#include <utility>

namespace retrasyn {

TrajectoryService::TrajectoryService(const StateSpace& states,
                                     std::unique_ptr<StreamReleaseEngine> owned,
                                     StreamReleaseEngine* engine,
                                     const ServiceOptions& options)
    : states_(&states), owned_engine_(std::move(owned)), engine_(engine) {
  retrasyn_ = dynamic_cast<const RetraSynEngine*>(engine_);
  session_ = std::make_unique<IngestSession>(
      states, [this](TimestampBatch batch) { return OnRound(std::move(batch)); });
  if (options.sync_policy == SyncPolicy::kAsync) {
    RoundCloser::Options closer_options;
    closer_options.queue_capacity =
        static_cast<size_t>(options.round_queue_capacity);
    closer_options.backpressure = options.backpressure;
    closer_ = std::make_unique<RoundCloser>(
        closer_options,
        [this](const TimestampBatch& batch) { return CloseRound(batch); },
        [this](const RoundRelease& round) { return Deliver(round); });
  }
}

TrajectoryService::~TrajectoryService() {
  // Stop the async workers before the engine and session they close over.
  closer_.reset();
}

ServiceOptions ServiceOptions::FromConfig(const RetraSynConfig& config) {
  ServiceOptions options;
  options.sync_policy = config.sync_policy;
  options.round_queue_capacity = config.round_queue_capacity;
  options.backpressure = config.backpressure;
  return options;
}

Status ServiceOptions::Validate() const {
  if (round_queue_capacity < 1) {
    return Status::InvalidArgument(
        "round_queue_capacity must be >= 1 sealed batch, got " +
        std::to_string(round_queue_capacity));
  }
  return Status::OK();
}

Result<std::unique_ptr<TrajectoryService>> TrajectoryService::Create(
    const StateSpace& states, const RetraSynConfig& config) {
  RETRASYN_RETURN_NOT_OK(config.Validate());
  const ServiceOptions options = ServiceOptions::FromConfig(config);
  RETRASYN_RETURN_NOT_OK(options.Validate());
  auto engine = std::make_unique<RetraSynEngine>(states, config);
  StreamReleaseEngine* raw = engine.get();
  return std::unique_ptr<TrajectoryService>(
      new TrajectoryService(states, std::move(engine), raw, options));
}

Result<std::unique_ptr<TrajectoryService>> TrajectoryService::CreateWithEngine(
    const StateSpace& states, std::unique_ptr<StreamReleaseEngine> engine,
    const ServiceOptions& options) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must not be null");
  }
  RETRASYN_RETURN_NOT_OK(options.Validate());
  StreamReleaseEngine* raw = engine.get();
  return std::unique_ptr<TrajectoryService>(
      new TrajectoryService(states, std::move(engine), raw, options));
}

Result<std::unique_ptr<TrajectoryService>> TrajectoryService::Attach(
    const StateSpace& states, StreamReleaseEngine* engine,
    const ServiceOptions& options) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must not be null");
  }
  RETRASYN_RETURN_NOT_OK(options.Validate());
  return std::unique_ptr<TrajectoryService>(
      new TrajectoryService(states, nullptr, engine, options));
}

void TrajectoryService::AddSink(ReleaseSink* sink) {
  if (sink == nullptr) return;
  std::lock_guard<std::mutex> l(sinks_mu_);
  sinks_.push_back(sink);
}

Status TrajectoryService::OnRound(TimestampBatch batch) {
  if (closer_ != nullptr) return closer_->Submit(std::move(batch));
  // Surface a previous sink failure before consuming another round, mirroring
  // the async pipeline's poisoned state.
  RETRASYN_RETURN_NOT_OK(inline_error_);
  Result<RoundRelease> release = CloseRound(batch);
  if (!release.ok()) return release.status();
  if (release.value().density.empty()) return Status::OK();  // no sinks
  // The engine has consumed the round; a sink failure past this point must
  // NOT fail this Tick() (the session would roll back and a retry would
  // double-observe the batch). Record it sticky instead: it surfaces on the
  // next Tick()/Drain()/SnapshotRelease, exactly like an async failure.
  Status delivered = Deliver(release.value());
  if (!delivered.ok()) inline_error_ = delivered;
  return Status::OK();
}

Result<RoundRelease> TrajectoryService::CloseRound(const TimestampBatch& batch) {
  engine_->Observe(batch);
  RoundRelease round;
  round.t = batch.t;
  bool have_sinks;
  {
    std::lock_guard<std::mutex> l(sinks_mu_);
    have_sinks = !sinks_.empty();
  }
  // With no sink subscribed at close time there is nobody to consume the
  // release; the empty density is the skip-delivery sentinel (a real grid
  // always has >= 1 cell). A sink added later starts with the next round
  // closed after the subscription.
  if (have_sinks) {
    round.density = engine_->LiveDensity();
    for (uint32_t c : round.density) round.active += c;
  }
  return round;
}

Status TrajectoryService::Deliver(const RoundRelease& round) {
  std::vector<ReleaseSink*> sinks;
  {
    std::lock_guard<std::mutex> l(sinks_mu_);
    sinks = sinks_;
  }
  for (ReleaseSink* sink : sinks) {
    RETRASYN_RETURN_NOT_OK(sink->OnRound(round));
  }
  return Status::OK();
}

Status TrajectoryService::Drain() {
  if (closer_ == nullptr) return inline_error_;
  return closer_->Drain();
}

Result<CellStreamSet> TrajectoryService::SnapshotRelease() const {
  return SnapshotRelease(rounds_closed());
}

Result<CellStreamSet> TrajectoryService::SnapshotRelease(
    int64_t num_timestamps) const {
  if (rounds_closed() < 1) {
    return Status::FailedPrecondition(
        "no rounds closed yet; Tick() the session before snapshotting");
  }
  if (num_timestamps < rounds_closed()) {
    return Status::InvalidArgument(
        "snapshot horizon " + std::to_string(num_timestamps) +
        " does not cover the " + std::to_string(rounds_closed()) +
        " closed rounds");
  }
  if (closer_ == nullptr) {
    RETRASYN_RETURN_NOT_OK(inline_error_);
  } else {
    // Order matters: once in_flight() reads 0 (and this thread is the only
    // submitter), every round has fully settled, so a failure among them is
    // already recorded by the time deferred_error() is read. The reverse
    // order would let a failure land between the two reads and hand out an
    // OK snapshot over an engine that silently dropped rounds.
    const size_t in_flight = closer_->in_flight();
    if (in_flight > 0) {
      return Status::FailedPrecondition(
          "async round closing is still in flight (" +
          std::to_string(in_flight) +
          " rounds); Drain() the service before snapshotting");
    }
    RETRASYN_RETURN_NOT_OK(closer_->deferred_error());
  }
  return engine_->SnapshotRelease(num_timestamps);
}

}  // namespace retrasyn
