#include "service/ingest_session.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <unordered_set>
#include <utility>

#include "common/logging.h"

namespace retrasyn {

namespace {

std::string UserTag(uint64_t user) {
  return "user " + std::to_string(user);
}

Status ValidateLocation(const Point& p) {
  if (!std::isfinite(p.x) || !std::isfinite(p.y)) {
    return Status::InvalidArgument("location coordinates must be finite");
  }
  return Status::OK();
}

}  // namespace

IngestSession::IngestSession(const StateSpace& states, RoundHandler handler,
                             IngestSessionOptions options)
    : states_(&states),
      grid_(&states.grid()),
      handler_(std::move(handler)),
      options_(options) {
  RETRASYN_CHECK(handler_ != nullptr);
  // Service-layer callers validate first (ServiceOptions::Validate) and
  // surface a Status; reaching here with a window-less recycling config is a
  // programming bug.
  RETRASYN_CHECK_MSG(!options_.recycle_stream_indices || options_.window >= 1,
                     "recycling requires a w-window of at least 1");
}

Status IngestSession::Enter(uint64_t user, const Point& location) {
  RETRASYN_RETURN_NOT_OK(ValidateLocation(location));
  auto pending = pending_.find(user);
  if (pending != pending_.end() && pending->second.has_location) {
    return Status::FailedPrecondition(
        UserTag(user) + " already reported a location in round " +
        std::to_string(open_round_) + " (duplicate Enter?)");
  }
  const bool active = active_.count(user) != 0;
  const bool quitting = pending != pending_.end() && pending->second.quit;
  if (active && !quitting) {
    return Status::FailedPrecondition(
        UserTag(user) + " already has a live stream; Move to report its next "
        "location or Quit to end it before re-entering");
  }
  RETRASYN_RETURN_NOT_OK(JournalAppend(JournalEvent::Enter(user, location)));
  PendingRound& round = pending_[user];
  round.has_location = true;
  round.is_enter = true;
  round.cell = grid_->Locate(location);
  ++num_pending_enters_;
  return Status::OK();
}

Status IngestSession::Move(uint64_t user, const Point& location) {
  RETRASYN_RETURN_NOT_OK(ValidateLocation(location));
  auto pending = pending_.find(user);
  if (pending != pending_.end() && pending->second.quit) {
    return Status::FailedPrecondition(
        UserTag(user) + " quit in round " + std::to_string(open_round_) +
        "; Enter to start a new stream");
  }
  if (pending != pending_.end() && pending->second.has_location) {
    return Status::FailedPrecondition(
        UserTag(user) + " already reported a location in round " +
        std::to_string(open_round_) + " (one report per timestamp)");
  }
  auto active = active_.find(user);
  if (active == active_.end()) {
    return Status::FailedPrecondition(
        UserTag(user) + " has no live stream at round " +
        std::to_string(open_round_) +
        " (never entered, quit, or lapsed by a reporting gap); Enter first");
  }
  RETRASYN_RETURN_NOT_OK(JournalAppend(JournalEvent::Move(user, location)));
  PendingRound& round = pending_[user];
  round.has_location = true;
  round.is_enter = false;
  round.cell = grid_->ClampToReachable(active->second.last_cell,
                                       grid_->Locate(location));
  return Status::OK();
}

Status IngestSession::Quit(uint64_t user) {
  auto pending = pending_.find(user);
  if (pending != pending_.end() && pending->second.quit &&
      !pending->second.has_location) {
    return Status::FailedPrecondition(UserTag(user) + " already quit in round " +
                                      std::to_string(open_round_));
  }
  if (pending != pending_.end() && pending->second.has_location) {
    if (pending->second.is_enter) {
      // The enter is still buffered — no report left the device — so quitting
      // simply cancels it. An explicit quit buffered before the enter (the
      // Quit -> Enter -> Quit ordering) stays: it closes the *old* stream.
      // The cancellation is journaled as the raw Quit it is; replay repeats
      // the same cancellation deterministically.
      RETRASYN_RETURN_NOT_OK(JournalAppend(JournalEvent::Quit(user)));
      --num_pending_enters_;
      if (pending->second.quit) {
        pending->second.has_location = false;
        pending->second.is_enter = false;
      } else {
        pending_.erase(pending);
      }
      return Status::OK();
    }
    return Status::FailedPrecondition(
        UserTag(user) + " reported a location in round " +
        std::to_string(open_round_) +
        "; the quit transition carries the previous round's location, so quit "
        "in the next round or just stop reporting");
  }
  if (active_.count(user) == 0) {
    return Status::FailedPrecondition(UserTag(user) +
                                      " has no live stream to quit");
  }
  RETRASYN_RETURN_NOT_OK(JournalAppend(JournalEvent::Quit(user)));
  pending_[user].quit = true;
  return Status::OK();
}

Status IngestSession::JournalAppend(const JournalEvent& event) {
  if (journal_ == nullptr) return Status::OK();
  return journal_->Append(event);
}

size_t IngestSession::num_active_users() const {
  size_t quits = 0;
  for (const auto& [user, round] : pending_) {
    if (round.quit) ++quits;
  }
  return active_.size() - quits + num_pending_enters_;
}

size_t IngestSession::num_pending_events() const {
  size_t n = 0;
  for (const auto& [user, round] : pending_) {
    n += (round.quit ? 1 : 0) + (round.has_location ? 1 : 0);
  }
  return n;
}

size_t IngestSession::num_retiring_indices() const {
  size_t n = 0;
  for (const auto& [round, indices] : quitted_at_) n += indices.size();
  return n;
}

SessionCheckpointState IngestSession::SaveCheckpointState() const {
  RETRASYN_CHECK_MSG(pending_.empty(),
                     "checkpoint capture requires a round boundary");
  SessionCheckpointState state;
  state.open_round = open_round_;
  state.next_stream_index = next_stream_index_;
  state.active.reserve(active_.size());
  for (const auto& [user, stream] : active_) {
    state.active.push_back(SessionCheckpointState::ActiveEntry{
        user, stream.stream_index, stream.last_cell});
  }
  std::sort(state.active.begin(), state.active.end(),
            [](const SessionCheckpointState::ActiveEntry& a,
               const SessionCheckpointState::ActiveEntry& b) {
              return a.user < b.user;
            });
  state.quitted_at = quitted_at_;
  state.free_indices = free_indices_;
  return state;
}

Status IngestSession::RestoreCheckpointState(SessionCheckpointState state) {
  if (open_round_ != 0 || next_stream_index_ != 0 || !active_.empty() ||
      !pending_.empty()) {
    return Status::FailedPrecondition(
        "checkpoint state can only be restored into a fresh session");
  }
  if (state.open_round < 0) {
    return Status::InvalidArgument(
        "corrupt checkpoint: negative open round");
  }
  if (state.next_stream_index > kMaxStreamIndex) {
    return Status::InvalidArgument(
        "corrupt checkpoint: stream-index high-water mark " +
        std::to_string(state.next_stream_index) + " exceeds the cap");
  }
  if (!options_.recycle_stream_indices &&
      (!state.quitted_at.empty() || !state.free_indices.empty())) {
    return Status::InvalidArgument(
        "checkpoint carries index-recycling state but recycling is disabled");
  }
  // Every index must sit below the high-water mark and live in at most one
  // place (a live stream, a retiring bucket, or the free list).
  std::unordered_set<uint32_t> seen;
  auto claim_index = [&](uint32_t index) {
    return index < state.next_stream_index && seen.insert(index).second;
  };
  for (size_t i = 0; i < state.active.size(); ++i) {
    const SessionCheckpointState::ActiveEntry& e = state.active[i];
    if (!claim_index(e.stream_index) || e.last_cell >= states_->num_cells() ||
        (i > 0 && e.user <= state.active[i - 1].user)) {
      return Status::InvalidArgument(
          "corrupt checkpoint: invalid live-stream entry for user " +
          std::to_string(e.user));
    }
  }
  int64_t prev_round = INT64_MIN;
  for (const auto& [round, indices] : state.quitted_at) {
    if (round <= prev_round || round >= state.open_round) {
      return Status::InvalidArgument(
          "corrupt checkpoint: retirement bucket rounds out of order");
    }
    prev_round = round;
    for (uint32_t index : indices) {
      if (!claim_index(index)) {
        return Status::InvalidArgument(
            "corrupt checkpoint: invalid retiring stream index " +
            std::to_string(index));
      }
    }
  }
  for (uint32_t index : state.free_indices) {
    if (!claim_index(index)) {
      return Status::InvalidArgument(
          "corrupt checkpoint: invalid free stream index " +
          std::to_string(index));
    }
  }
  open_round_ = state.open_round;
  next_stream_index_ = state.next_stream_index;
  active_.reserve(state.active.size());
  for (const SessionCheckpointState::ActiveEntry& e : state.active) {
    active_.emplace(e.user, ActiveStream{e.stream_index, e.last_cell});
  }
  quitted_at_ = std::move(state.quitted_at);
  free_indices_ = std::move(state.free_indices);
  return Status::OK();
}

Status IngestSession::Tick() {
  if (journal_ != nullptr) {
    // A poisoned journal fails the Tick before the handler can consume the
    // batch: the round stays open, fully retryable once durability returns.
    RETRASYN_RETURN_NOT_OK(journal_->status());
    // Start making this round's event data durable on the journal's presync
    // worker now, overlapped with sealing and the round handler below, so
    // the boundary record's fsync after the handler pays only for itself.
    journal_->BeginRoundSync();
  }
  // One entry per event, sortable into a deterministic, arrival-order
  // independent batch: quits sort before same-user locations so a re-entry
  // in the quitting round closes the old segment first.
  struct Entry {
    uint64_t user;
    uint8_t phase;  // 0 = quit, 1 = enter/move
    bool is_enter;
    CellId cell;    // location for phase 1; final cell for phase 0
  };
  std::vector<Entry> entries;
  entries.reserve(pending_.size() + active_.size());

  for (const auto& [user, round] : pending_) {
    if (round.quit) {
      entries.push_back(Entry{user, 0, false, active_.at(user).last_cell});
    }
    if (round.has_location) {
      entries.push_back(Entry{user, 1, round.is_enter, round.cell});
    }
  }
  // Implicit quits: live streams that sent nothing this round lapse, exactly
  // like the batch importer splitting gapped trajectories.
  for (const auto& [user, stream] : active_) {
    auto pending = pending_.find(user);
    if (pending == pending_.end() ||
        (!pending->second.quit && !pending->second.has_location)) {
      entries.push_back(Entry{user, 0, false, stream.last_cell});
    }
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.user != b.user ? a.user < b.user : a.phase < b.phase;
  });

  // Stream indices retiring this round: quitted_at_ buckets whose quit round
  // has left the w-window as of the round being sealed. Only *peeked* here —
  // nothing is popped until the handler succeeds — and purely a function of
  // the sealed batch sequence, so a retried Tick(), the async closer, and
  // journal replay all re-derive the identical assignment.
  size_t retiring_buckets = 0;
  size_t retiring_count = 0;
  while (retiring_buckets < quitted_at_.size() &&
         quitted_at_[retiring_buckets].first <=
             open_round_ - options_.window) {
    retiring_count += quitted_at_[retiring_buckets].second.size();
    ++retiring_buckets;
  }
  const size_t reusable = free_indices_.size() + retiring_count;

  // Cursor over the virtual concatenation [free_indices_ | retiring buckets
  // | fresh counter], consumed in that (oldest-retired-first) order.
  size_t free_cursor = 0;
  size_t bucket = 0;
  size_t bucket_pos = 0;
  uint32_t next_index = next_stream_index_;
  auto next_stream = [&]() -> uint32_t {
    if (free_cursor < free_indices_.size()) return free_indices_[free_cursor++];
    if (free_cursor < reusable) {
      ++free_cursor;
      while (bucket_pos >= quitted_at_[bucket].second.size()) {
        ++bucket;
        bucket_pos = 0;
      }
      return quitted_at_[bucket].second[bucket_pos++];
    }
    return next_index++;
  };

  // Build the batch without mutating any session state: a failing handler
  // must leave the round open with its events intact, and a retried Tick()
  // must reproduce the identical batch — including the stream indices, which
  // are therefore drawn from local cursors and committed only on success.
  TimestampBatch batch;
  batch.t = open_round_;
  batch.observations.reserve(entries.size());
  std::unordered_map<uint64_t, ActiveStream> next_active;
  next_active.reserve(entries.size());
  std::vector<uint32_t> quit_indices;
  for (const Entry& e : entries) {
    UserObservation obs;
    if (e.phase == 0) {
      obs.user_index = active_.at(e.user).stream_index;
      obs.state = states_->QuitIndex(e.cell);
      obs.is_quit = true;
      if (options_.recycle_stream_indices) {
        quit_indices.push_back(obs.user_index);
      }
    } else if (e.is_enter) {
      obs.user_index = next_stream();
      obs.state = states_->EnterIndex(e.cell);
      obs.is_enter = true;
      next_active[e.user] = ActiveStream{obs.user_index, e.cell};
      ++batch.num_active;
    } else {
      const ActiveStream& stream = active_.at(e.user);
      obs.user_index = stream.stream_index;
      obs.state = states_->MoveIndex(stream.last_cell, e.cell);
      RETRASYN_DCHECK(obs.state != kInvalidState);
      next_active[e.user] = ActiveStream{stream.stream_index, e.cell};
      ++batch.num_active;
    }
    batch.observations.push_back(obs);
  }
  if (next_index > kMaxStreamIndex) {
    // Refuse before the handler (and before the engine's dense bookkeeping
    // would CHECK-abort): the round stays open with its events intact. The
    // caller can shed pending enters (Quit cancels them) and retry, but a
    // deployment genuinely holding ~1.07B live-or-window-retained streams
    // has outgrown the 2^30 index space.
    return Status::ResourceExhausted(
        "stream-index space exhausted sealing round " +
        std::to_string(open_round_) + ": " +
        std::to_string(next_index - next_stream_index_) +
        " fresh indices needed past high-water mark " +
        std::to_string(next_stream_index_) + " (cap " +
        std::to_string(kMaxStreamIndex) + ", " + std::to_string(reusable) +
        " recycled indices were available)");
  }

  RETRASYN_RETURN_NOT_OK(handler_(std::move(batch)));
  // The handler consumed the round; its content is final. Journal the round
  // boundary (fsync point under FsyncPolicy::kEveryRound) before committing.
  // A failure here cannot roll the Tick back — retrying would hand the
  // handler the batch twice — so the round still commits, this Tick returns
  // the journal error, and the writer's sticky failure blocks every later
  // entry point: the on-disk journal is at most this one boundary behind.
  const Status journaled = JournalAppend(JournalEvent::Tick());
  next_stream_index_ = next_index;
  if (options_.recycle_stream_indices) {
    // Commit the index lifecycle exactly as the cursors consumed it: drop
    // the used prefix of the free list, retire the peeked buckets (their
    // unconsumed suffix joins the free list), and bucket this round's quits
    // for retirement once the window passes them.
    const size_t consumed_free =
        std::min(free_cursor, free_indices_.size());
    const size_t consumed_retiring = free_cursor - consumed_free;
    free_indices_.erase(free_indices_.begin(),
                        free_indices_.begin() +
                            static_cast<std::ptrdiff_t>(consumed_free));
    size_t skip = consumed_retiring;
    for (size_t b = 0; b < retiring_buckets; ++b) {
      for (uint32_t index : quitted_at_.front().second) {
        if (skip > 0) {
          --skip;
          continue;
        }
        free_indices_.push_back(index);
      }
      quitted_at_.pop_front();
    }
    if (!quit_indices.empty()) {
      quitted_at_.emplace_back(open_round_, std::move(quit_indices));
    }
  }
  active_ = std::move(next_active);
  pending_.clear();
  num_pending_enters_ = 0;
  const int64_t sealed_round = open_round_;
  ++open_round_;
  // Fire the commit hook only when the boundary record reached the journal:
  // a checkpoint captured here must never describe a round the journal does
  // not hold, or recovery could not bridge from checkpoint to journal tail.
  if (journaled.ok() && commit_hook_) commit_hook_(sealed_round);
  return journaled;
}

Status IngestSession::AdvanceTo(int64_t t) {
  if (t < open_round_) {
    return Status::InvalidArgument(
        "cannot advance to timestamp " + std::to_string(t) + "; round " +
        std::to_string(open_round_) +
        " is already open and closed rounds are immutable");
  }
  while (open_round_ < t) {
    RETRASYN_RETURN_NOT_OK(Tick());
  }
  return Status::OK();
}

}  // namespace retrasyn
