#include "service/ingest_session.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <string>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"

namespace retrasyn {

namespace {

std::string UserTag(uint64_t user) {
  return "user " + std::to_string(user);
}

Status ValidateLocation(const Point& p) {
  if (!std::isfinite(p.x) || !std::isfinite(p.y)) {
    return Status::InvalidArgument("location coordinates must be finite");
  }
  return Status::OK();
}

/// Observation buffers kept for reuse; beyond this, RecycleBatch frees.
constexpr size_t kMaxPooledObservationBuffers = 8;

int64_t NowSteadyNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

IngestSession::IngestSession(const StateSpace& states, RoundHandler handler,
                             IngestSessionOptions options)
    : states_(&states),
      grid_(&states.grid()),
      handler_(std::move(handler)),
      options_(options) {
  RETRASYN_CHECK(handler_ != nullptr);
  // Service-layer callers validate first (ServiceOptions::Validate) and
  // surface a Status; reaching here with a window-less recycling config or a
  // nonsensical shard count is a programming bug.
  RETRASYN_CHECK_MSG(!options_.recycle_stream_indices || options_.window >= 1,
                     "recycling requires a w-window of at least 1");
  RETRASYN_CHECK_MSG(options_.num_shards >= 1,
                     "an ingest session needs at least one shard");
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (options_.num_shards > 1) {
    seal_pool_ = std::make_unique<ThreadPool>(
        std::min(options_.num_shards, ThreadPool::DefaultConcurrency()));
  }
  if (options_.telemetry != nullptr) {
    telemetry_ = options_.telemetry;
    registry_ = &telemetry_->registry();
    trace_ = &telemetry_->trace();
  } else {
    owned_registry_ = std::make_unique<MetricsRegistry>();
    registry_ = owned_registry_.get();
  }
  RegisterMetrics();
}

void IngestSession::RegisterMetrics() {
  rounds_sealed_metric_ = registry_->GetCounter(
      "retrasyn_ingest_rounds_sealed_total", "Successful Tick() round closes");
  entries_merged_metric_ = registry_->GetCounter(
      "retrasyn_ingest_entries_merged_total",
      "Observations across all sealed rounds");
  obs_buffers_reused_metric_ = registry_->GetCounter(
      "retrasyn_ingest_obs_buffers_reused_total",
      "Rounds sealed into a recycled observation buffer");
  seal_hist_ = registry_->GetHistogram(
      "retrasyn_ingest_seal_seconds",
      "Parallel per-shard seal phase of Tick() (wall)");
  merge_hist_ = registry_->GetHistogram(
      "retrasyn_ingest_merge_seconds",
      "K-way merge + stream-index assignment phase of Tick() (wall)");
  commit_hist_ = registry_->GetHistogram(
      "retrasyn_ingest_commit_seconds",
      "Post-handler state-commit phase of Tick() (wall)");
  for (size_t i = 0; i < shards_.size(); ++i) {
    const MetricsRegistry::Labels labels = {{"shard", std::to_string(i)}};
    Shard& shard = *shards_[i];
    shard.accepted_metric = registry_->GetCounter(
        "retrasyn_ingest_events_accepted_total",
        "Events admitted into this shard", labels);
    shard.rejected_metric = registry_->GetCounter(
        "retrasyn_ingest_events_rejected_total",
        "Events failing validation in this shard", labels);
    shard.pending_metric = registry_->GetGauge(
        "retrasyn_ingest_pending_events",
        "Events buffered for the open round in this shard", labels);
    shard.peak_pending_metric = registry_->GetGauge(
        "retrasyn_ingest_pending_events_peak",
        "High-water mark of pending events in this shard", labels);
    shard.active_metric = registry_->GetGauge(
        "retrasyn_ingest_active_streams",
        "Live streams owned by this shard", labels);
  }
}

void IngestSession::NoteAdmission() {
  if (round_admit_start_ns_.load(std::memory_order_relaxed) != 0) return;
  int64_t expected = 0;
  round_admit_start_ns_.compare_exchange_strong(expected, NowSteadyNanos(),
                                                std::memory_order_relaxed);
}

uint32_t IngestSession::ShardOf(uint64_t user, int num_shards) {
  RETRASYN_DCHECK(num_shards >= 1);
  // splitmix64 finalizer: sequential user ids spread evenly across shards.
  uint64_t x = user + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<uint32_t>(x % static_cast<uint64_t>(num_shards));
}

void IngestSession::AttachJournal(JournalWriter* journal) {
  RETRASYN_CHECK_MSG(shards_.size() == 1,
                     "AttachJournal is the single-shard entry point; sharded "
                     "sessions attach one journal per shard (AttachJournals)");
  // Attach normally happens before producers start, but nothing enforced
  // that: the naked pointer write raced any concurrent producer reading
  // shard->journal under its lock. Take the shard lock (setup-time cost only).
  MutexLock l(shards_[0]->mu);
  shards_[0]->journal = journal;
}

void IngestSession::AttachJournals(std::vector<JournalWriter*> journals) {
  if (journals.empty()) {
    for (auto& shard : shards_) {
      MutexLock l(shard->mu);  // see AttachJournal
      shard->journal = nullptr;
    }
    return;
  }
  RETRASYN_CHECK_MSG(journals.size() == shards_.size(),
                     "a sharded session needs exactly one journal per shard");
  for (size_t i = 0; i < shards_.size(); ++i) {
    RETRASYN_CHECK(journals[i] != nullptr);
    MutexLock l(shards_[i]->mu);  // see AttachJournal
    shards_[i]->journal = journals[i];
  }
}

Status IngestSession::BoundaryPoison() const {
  if (!boundary_poisoned_.load(std::memory_order_acquire)) return Status::OK();
  return poison_status_;
}

Status IngestSession::Enter(uint64_t user, const Point& location) {
  RETRASYN_RETURN_NOT_OK(BoundaryPoison());
  Shard& shard = shard_of(user);
  MutexLock l(shard.mu);
  // Re-check under the lock: Tick() sets the poison while holding every
  // shard mutex, so a producer that passed the fast-path check and then
  // blocked here must not journal an event after a skewed boundary.
  RETRASYN_RETURN_NOT_OK(BoundaryPoison());
  Status st = EnterLocked(shard, user, location);
  if (st.ok()) {
    shard.accepted_metric->Increment();
    if (trace_ != nullptr) NoteAdmission();
  } else if (st.code() == StatusCode::kFailedPrecondition ||
             st.code() == StatusCode::kInvalidArgument) {
    shard.rejected_metric->Increment();
  }
  return st;
}

Status IngestSession::EnterLocked(Shard& shard, uint64_t user,
                                  const Point& location) {
  RETRASYN_RETURN_NOT_OK(ValidateLocation(location));
  auto pending = shard.pending.find(user);
  if (pending != shard.pending.end() && pending->second.has_location) {
    return Status::FailedPrecondition(
        UserTag(user) + " already reported a location in round " +
        std::to_string(open_round_) + " (duplicate Enter?)");
  }
  const bool active = shard.active.count(user) != 0;
  const bool quitting = pending != shard.pending.end() && pending->second.quit;
  if (active && !quitting) {
    return Status::FailedPrecondition(
        UserTag(user) + " already has a live stream; Move to report its next "
        "location or Quit to end it before re-entering");
  }
  if (shard.journal != nullptr) {
    RETRASYN_RETURN_NOT_OK(
        shard.journal->Append(JournalEvent::Enter(user, location)));
  }
  PendingRound& round = shard.pending[user];
  round.has_location = true;
  round.is_enter = true;
  round.cell = grid_->Locate(location);
  ++shard.num_pending_enters;
  ++shard.num_pending_events;
  shard.pending_metric->Set(static_cast<int64_t>(shard.num_pending_events));
  shard.peak_pending_metric->SetMax(
      static_cast<int64_t>(shard.num_pending_events));
  return Status::OK();
}

Status IngestSession::Move(uint64_t user, const Point& location) {
  RETRASYN_RETURN_NOT_OK(BoundaryPoison());
  Shard& shard = shard_of(user);
  MutexLock l(shard.mu);
  RETRASYN_RETURN_NOT_OK(BoundaryPoison());  // see Enter
  Status st = MoveLocked(shard, user, location);
  if (st.ok()) {
    shard.accepted_metric->Increment();
    if (trace_ != nullptr) NoteAdmission();
  } else if (st.code() == StatusCode::kFailedPrecondition ||
             st.code() == StatusCode::kInvalidArgument) {
    shard.rejected_metric->Increment();
  }
  return st;
}

Status IngestSession::MoveLocked(Shard& shard, uint64_t user,
                                 const Point& location) {
  RETRASYN_RETURN_NOT_OK(ValidateLocation(location));
  auto pending = shard.pending.find(user);
  if (pending != shard.pending.end() && pending->second.quit) {
    return Status::FailedPrecondition(
        UserTag(user) + " quit in round " + std::to_string(open_round_) +
        "; Enter to start a new stream");
  }
  if (pending != shard.pending.end() && pending->second.has_location) {
    return Status::FailedPrecondition(
        UserTag(user) + " already reported a location in round " +
        std::to_string(open_round_) + " (one report per timestamp)");
  }
  auto active = shard.active.find(user);
  if (active == shard.active.end()) {
    return Status::FailedPrecondition(
        UserTag(user) + " has no live stream at round " +
        std::to_string(open_round_) +
        " (never entered, quit, or lapsed by a reporting gap); Enter first");
  }
  if (shard.journal != nullptr) {
    RETRASYN_RETURN_NOT_OK(
        shard.journal->Append(JournalEvent::Move(user, location)));
  }
  PendingRound& round = shard.pending[user];
  round.has_location = true;
  round.is_enter = false;
  round.cell = grid_->ClampToReachable(active->second.last_cell,
                                       grid_->Locate(location));
  ++shard.num_pending_events;
  shard.pending_metric->Set(static_cast<int64_t>(shard.num_pending_events));
  shard.peak_pending_metric->SetMax(
      static_cast<int64_t>(shard.num_pending_events));
  return Status::OK();
}

Status IngestSession::Quit(uint64_t user) {
  RETRASYN_RETURN_NOT_OK(BoundaryPoison());
  Shard& shard = shard_of(user);
  MutexLock l(shard.mu);
  RETRASYN_RETURN_NOT_OK(BoundaryPoison());  // see Enter
  Status st = QuitLocked(shard, user);
  if (st.ok()) {
    shard.accepted_metric->Increment();
    if (trace_ != nullptr) NoteAdmission();
  } else if (st.code() == StatusCode::kFailedPrecondition ||
             st.code() == StatusCode::kInvalidArgument) {
    shard.rejected_metric->Increment();
  }
  return st;
}

Status IngestSession::QuitLocked(Shard& shard, uint64_t user) {
  auto pending = shard.pending.find(user);
  if (pending != shard.pending.end() && pending->second.quit &&
      !pending->second.has_location) {
    return Status::FailedPrecondition(UserTag(user) + " already quit in round " +
                                      std::to_string(open_round_));
  }
  if (pending != shard.pending.end() && pending->second.has_location) {
    if (pending->second.is_enter) {
      // The enter is still buffered — no report left the device — so quitting
      // simply cancels it. An explicit quit buffered before the enter (the
      // Quit -> Enter -> Quit ordering) stays: it closes the *old* stream.
      // The cancellation is journaled as the raw Quit it is; replay repeats
      // the same cancellation deterministically.
      if (shard.journal != nullptr) {
        RETRASYN_RETURN_NOT_OK(shard.journal->Append(JournalEvent::Quit(user)));
      }
      --shard.num_pending_enters;
      --shard.num_pending_events;
      shard.pending_metric->Set(
          static_cast<int64_t>(shard.num_pending_events));
      if (pending->second.quit) {
        pending->second.has_location = false;
        pending->second.is_enter = false;
      } else {
        shard.pending.erase(pending);
      }
      return Status::OK();
    }
    return Status::FailedPrecondition(
        UserTag(user) + " reported a location in round " +
        std::to_string(open_round_) +
        "; the quit transition carries the previous round's location, so quit "
        "in the next round or just stop reporting");
  }
  if (shard.active.count(user) == 0) {
    return Status::FailedPrecondition(UserTag(user) +
                                      " has no live stream to quit");
  }
  if (shard.journal != nullptr) {
    RETRASYN_RETURN_NOT_OK(shard.journal->Append(JournalEvent::Quit(user)));
  }
  shard.pending[user].quit = true;
  ++shard.num_pending_quits;
  ++shard.num_pending_events;
  shard.pending_metric->Set(static_cast<int64_t>(shard.num_pending_events));
  shard.peak_pending_metric->SetMax(
      static_cast<int64_t>(shard.num_pending_events));
  return Status::OK();
}

size_t IngestSession::num_active_users() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    MutexLock l(shard->mu);
    n += shard->active.size() - shard->num_pending_quits +
         shard->num_pending_enters;
  }
  return n;
}

size_t IngestSession::num_pending_events() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    MutexLock l(shard->mu);
    n += shard->num_pending_events;
  }
  return n;
}

IngestStats IngestSession::stats() const {
  // Pure registry view: every value reads back from the metrics the session
  // registered at construction (no parallel counter system). The shard lock
  // only pins pending/accepted to a consistent cut per shard.
  IngestStats stats;
  stats.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    MutexLock l(shard->mu);
    IngestShardStats s;
    s.events_accepted = shard->accepted_metric->Value();
    s.events_rejected = shard->rejected_metric->Value();
    s.pending_events = static_cast<uint64_t>(shard->pending_metric->Value());
    s.peak_pending_events =
        static_cast<uint64_t>(shard->peak_pending_metric->Value());
    s.active_streams = static_cast<uint64_t>(shard->active_metric->Value());
    stats.shards.push_back(s);
  }
  stats.rounds_sealed = rounds_sealed_metric_->Value();
  stats.entries_merged = entries_merged_metric_->Value();
  stats.seal_seconds = seal_hist_->SumSeconds();
  stats.merge_seconds = merge_hist_->SumSeconds();
  stats.commit_seconds = commit_hist_->SumSeconds();
  stats.obs_buffers_reused = obs_buffers_reused_metric_->Value();
  return stats;
}

void IngestSession::RecycleBatch(TimestampBatch&& batch) {
  if (!options_.reuse_seal_buffers) return;
  MutexLock l(obs_pool_mu_);
  if (obs_pool_.size() >= kMaxPooledObservationBuffers) return;
  batch.observations.clear();
  obs_pool_.push_back(std::move(batch.observations));
}

std::vector<UserObservation> IngestSession::AcquireObservationBuffer(
    bool* reused) {
  *reused = false;
  if (!options_.reuse_seal_buffers) return {};
  MutexLock l(obs_pool_mu_);
  if (obs_pool_.empty()) return {};
  std::vector<UserObservation> buffer = std::move(obs_pool_.back());
  obs_pool_.pop_back();
  *reused = true;
  return buffer;
}

size_t IngestSession::num_retiring_indices() const {
  size_t n = 0;
  for (const auto& [round, indices] : quitted_at_) n += indices.size();
  return n;
}

SessionCheckpointState IngestSession::SaveCheckpointState() const {
  // Runs inside Tick()'s commit hook, where the Tick thread still holds every
  // shard mutex (the all-shards protocol); single-threaded test callers hold
  // no locks but have no concurrency to race. AssertHeld records the custody
  // for the analysis without re-locking.
  size_t total_active = 0;
  size_t total_pending = 0;
  for (const auto& shard : shards_) {
    shard->mu.AssertHeld();
    total_active += shard->active.size();
    total_pending += shard->num_pending_events;
  }
  RETRASYN_CHECK_MSG(total_pending == 0,
                     "checkpoint capture requires a round boundary");
  SessionCheckpointState state;
  state.open_round = open_round_;
  state.next_stream_index = next_stream_index_;
  state.active.reserve(total_active);
  for (const auto& shard : shards_) {
    shard->mu.AssertHeld();
    for (const auto& [user, stream] : shard->active) {
      state.active.push_back(SessionCheckpointState::ActiveEntry{
          user, stream.stream_index, stream.last_cell});
    }
  }
  // User order merges the shard slices into the same vector a single shard
  // produces: the checkpoint bytes are shard-count agnostic.
  std::sort(state.active.begin(), state.active.end(),
            [](const SessionCheckpointState::ActiveEntry& a,
               const SessionCheckpointState::ActiveEntry& b) {
              return a.user < b.user;
            });
  state.quitted_at = quitted_at_;
  state.free_indices = free_indices_;
  return state;
}

Status IngestSession::RestoreCheckpointState(SessionCheckpointState state) {
  // Restore targets a fresh session, but "fresh" never implied "unobserved":
  // a monitoring thread polling stats()/num_active_users() during recovery
  // read shard->active while this wrote it. Hold every shard for the whole
  // restore, same index-order protocol as Tick().
  ShardLockSet locks(shards_);
  bool fresh = open_round_ == 0 && next_stream_index_ == 0;
  for (const auto& shard : shards_) {
    shard->mu.AssertHeld();
    fresh = fresh && shard->active.empty() && shard->pending.empty();
  }
  if (!fresh) {
    return Status::FailedPrecondition(
        "checkpoint state can only be restored into a fresh session");
  }
  if (state.open_round < 0) {
    return Status::InvalidArgument(
        "corrupt checkpoint: negative open round");
  }
  if (state.next_stream_index > kMaxStreamIndex) {
    return Status::InvalidArgument(
        "corrupt checkpoint: stream-index high-water mark " +
        std::to_string(state.next_stream_index) + " exceeds the cap");
  }
  if (!options_.recycle_stream_indices &&
      (!state.quitted_at.empty() || !state.free_indices.empty())) {
    return Status::InvalidArgument(
        "checkpoint carries index-recycling state but recycling is disabled");
  }
  // Every index must sit below the high-water mark and live in at most one
  // place (a live stream, a retiring bucket, or the free list).
  std::unordered_set<uint32_t> seen;
  auto claim_index = [&](uint32_t index) {
    return index < state.next_stream_index && seen.insert(index).second;
  };
  for (size_t i = 0; i < state.active.size(); ++i) {
    const SessionCheckpointState::ActiveEntry& e = state.active[i];
    if (!claim_index(e.stream_index) || e.last_cell >= states_->num_cells() ||
        (i > 0 && e.user <= state.active[i - 1].user)) {
      return Status::InvalidArgument(
          "corrupt checkpoint: invalid live-stream entry for user " +
          std::to_string(e.user));
    }
  }
  int64_t prev_round = INT64_MIN;
  for (const auto& [round, indices] : state.quitted_at) {
    if (round <= prev_round || round >= state.open_round) {
      return Status::InvalidArgument(
          "corrupt checkpoint: retirement bucket rounds out of order");
    }
    prev_round = round;
    for (uint32_t index : indices) {
      if (!claim_index(index)) {
        return Status::InvalidArgument(
            "corrupt checkpoint: invalid retiring stream index " +
            std::to_string(index));
      }
    }
  }
  for (uint32_t index : state.free_indices) {
    if (!claim_index(index)) {
      return Status::InvalidArgument(
          "corrupt checkpoint: invalid free stream index " +
          std::to_string(index));
    }
  }
  open_round_ = state.open_round;
  next_stream_index_ = state.next_stream_index;
  for (const SessionCheckpointState::ActiveEntry& e : state.active) {
    Shard& shard = shard_of(e.user);
    shard.mu.AssertHeld();
    shard.active.emplace(e.user, ActiveStream{e.stream_index, e.last_cell});
  }
  for (const auto& shard : shards_) {
    shard->mu.AssertHeld();
    shard->active_metric->Set(static_cast<int64_t>(shard->active.size()));
  }
  quitted_at_ = std::move(state.quitted_at);
  free_indices_ = std::move(state.free_indices);
  return Status::OK();
}

void IngestSession::SealShard(Shard& shard) {
  std::vector<SealedEntry>& entries = shard.entries;
  entries.clear();
  entries.reserve(shard.pending.size() + shard.active.size());
  for (const auto& [user, round] : shard.pending) {
    if (round.quit) {
      const ActiveStream& stream = shard.active.at(user);
      entries.push_back(SealedEntry{user, stream.stream_index,
                                    states_->QuitIndex(stream.last_cell),
                                    stream.last_cell, 0, false});
    }
    if (round.has_location) {
      if (round.is_enter) {
        entries.push_back(SealedEntry{user, 0, states_->EnterIndex(round.cell),
                                      round.cell, 1, true});
      } else {
        const ActiveStream& stream = shard.active.at(user);
        const uint32_t state =
            states_->MoveIndex(stream.last_cell, round.cell);
        RETRASYN_DCHECK(state != kInvalidState);
        entries.push_back(SealedEntry{user, stream.stream_index, state,
                                      round.cell, 1, false});
      }
    }
  }
  // Implicit quits: live streams that sent nothing this round lapse, exactly
  // like the batch importer splitting gapped trajectories.
  for (const auto& [user, stream] : shard.active) {
    auto pending = shard.pending.find(user);
    if (pending == shard.pending.end() ||
        (!pending->second.quit && !pending->second.has_location)) {
      entries.push_back(SealedEntry{user, stream.stream_index,
                                    states_->QuitIndex(stream.last_cell),
                                    stream.last_cell, 0, false});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const SealedEntry& a, const SealedEntry& b) {
              return a.user != b.user ? a.user < b.user : a.phase < b.phase;
            });
}

void IngestSession::CommitShard(Shard& shard) {
  // In place, in (user, phase) order: a quit erases, a location overwrites
  // or inserts, and a quit-then-re-enter replaces — no rebuild of the whole
  // map, so the steady-state commit allocates nothing.
  for (const SealedEntry& e : shard.entries) {
    if (e.phase == 0) {
      shard.active.erase(e.user);
    } else {
      shard.active[e.user] = ActiveStream{e.stream_index, e.cell};
    }
  }
  if (!options_.reuse_seal_buffers) {
    std::vector<SealedEntry>().swap(shard.entries);
  }
  shard.pending.clear();
  shard.num_pending_enters = 0;
  shard.num_pending_events = 0;
  shard.num_pending_quits = 0;
  shard.pending_metric->Set(0);
  shard.active_metric->Set(static_cast<int64_t>(shard.active.size()));
}

Status IngestSession::Tick() {
  RETRASYN_RETURN_NOT_OK(BoundaryPoison());
  // Hold every shard for the whole round close (index order; producers lock
  // exactly one shard, so there is no deadlock). Producers arriving now block
  // until the new round opens — their events land in the next round. Per-shard
  // accesses below re-establish custody for the analysis with AssertHeld; the
  // seal-pool lambdas do too, because the workers run under locks *this*
  // thread holds (the ThreadPool job handoff provides the happens-before
  // edges; the TSan suite exercises exactly this).
  ShardLockSet locks(shards_);

  // Admit dwell: first admitted event -> this round boundary. Read, not
  // cleared — a failed Tick leaves the round (and its dwell clock) open.
  double admit_s = 0.0;
  if (trace_ != nullptr) {
    const int64_t first_ns =
        round_admit_start_ns_.load(std::memory_order_relaxed);
    if (first_ns > 0) admit_s = (NowSteadyNanos() - first_ns) * 1e-9;
  }

  size_t total_entries = 0;
  for (auto& shard : shards_) {
    shard->mu.AssertHeld();
    if (shard->journal != nullptr) {
      // A poisoned journal fails the Tick before the handler can consume the
      // batch: the round stays open, fully retryable once durability
      // returns. Checking every shard upfront keeps the shard streams
      // aligned — no shard closes a round a sibling cannot.
      RETRASYN_RETURN_NOT_OK(shard->journal->status());
    }
    total_entries += shard->pending.size() + shard->active.size();
  }
  for (auto& shard : shards_) {
    shard->mu.AssertHeld();
    if (shard->journal != nullptr) {
      // Start making this round's event data durable on the journal's
      // presync worker now, overlapped with sealing and the round handler
      // below, so the boundary record's fsync after the handler pays only
      // for itself.
      shard->journal->BeginRoundSync();
    }
  }

  // 1. Seal every shard into a sorted entry run, in parallel. Pure per-shard
  //    work — transition states and quit/move stream indices are functions
  //    of shard state alone — so the pool size never affects bytes.
  Stopwatch seal_watch;
  if (seal_pool_ != nullptr) {
    seal_pool_->ParallelFor(static_cast<int>(shards_.size()), [this](int i) {
      Shard& shard = *shards_[static_cast<size_t>(i)];
      shard.mu.AssertHeld();  // held by the Tick thread; see ShardLockSet above
      SealShard(shard);
    });
  } else {
    for (auto& shard : shards_) {
      shard->mu.AssertHeld();
      SealShard(*shard);
    }
  }
  const double seal_s = seal_watch.ElapsedSeconds();

  // Stream indices retiring this round: quitted_at_ buckets whose quit round
  // has left the w-window as of the round being sealed. Only *peeked* here —
  // nothing is popped until the handler succeeds — and purely a function of
  // the sealed batch sequence, so a retried Tick(), the async closer, and
  // journal replay all re-derive the identical assignment.
  size_t retiring_buckets = 0;
  size_t retiring_count = 0;
  while (retiring_buckets < quitted_at_.size() &&
         quitted_at_[retiring_buckets].first <=
             open_round_ - options_.window) {
    retiring_count += quitted_at_[retiring_buckets].second.size();
    ++retiring_buckets;
  }
  const size_t reusable = free_indices_.size() + retiring_count;

  // Cursor over the virtual concatenation [free_indices_ | retiring buckets
  // | fresh counter], consumed in that (oldest-retired-first) order.
  size_t free_cursor = 0;
  size_t bucket = 0;
  size_t bucket_pos = 0;
  uint32_t next_index = next_stream_index_;
  auto next_stream = [&]() -> uint32_t {
    if (free_cursor < free_indices_.size()) return free_indices_[free_cursor++];
    if (free_cursor < reusable) {
      ++free_cursor;
      while (bucket_pos >= quitted_at_[bucket].second.size()) {
        ++bucket;
        bucket_pos = 0;
      }
      return quitted_at_[bucket].second[bucket_pos++];
    }
    return next_index++;
  };

  // 2. K-way merge of the sorted shard runs into the global (user, phase)
  //    order — O(n log k) worth of comparisons instead of the O(n log n)
  //    global sort, and identical to it because shards partition the users.
  //    Enters draw their stream index here, on the merged sequence, which is
  //    what keeps the assignment a pure function of the batch sequence and
  //    byte-identical to a single shard. Nothing mutates session state: a
  //    failing handler must leave the round open with its events intact, and
  //    a retried Tick() must reproduce the identical batch.
  Stopwatch merge_watch;
  TimestampBatch batch;
  batch.t = open_round_;
  bool reused_buffer = false;
  batch.observations = AcquireObservationBuffer(&reused_buffer);
  batch.observations.reserve(total_entries);
  std::vector<uint32_t> quit_indices;
  struct Cursor {
    SealedEntry* it;
    SealedEntry* end;
  };
  std::vector<Cursor> cursors;
  cursors.reserve(shards_.size());
  for (auto& shard : shards_) {
    shard->mu.AssertHeld();
    if (!shard->entries.empty()) {
      cursors.push_back(Cursor{shard->entries.data(),
                               shard->entries.data() + shard->entries.size()});
    }
  }
  while (!cursors.empty()) {
    size_t min = 0;
    for (size_t c = 1; c < cursors.size(); ++c) {
      const SealedEntry& a = *cursors[c].it;
      const SealedEntry& b = *cursors[min].it;
      if (a.user != b.user ? a.user < b.user : a.phase < b.phase) min = c;
    }
    SealedEntry& e = *cursors[min].it++;
    if (cursors[min].it == cursors[min].end) {
      cursors[min] = cursors.back();
      cursors.pop_back();
    }
    UserObservation obs;
    if (e.phase == 0) {
      obs.user_index = e.stream_index;
      obs.state = e.state;
      obs.is_quit = true;
      if (options_.recycle_stream_indices) {
        quit_indices.push_back(e.stream_index);
      }
    } else if (e.is_enter) {
      e.stream_index = next_stream();  // committed to the shard on success
      obs.user_index = e.stream_index;
      obs.state = e.state;
      obs.is_enter = true;
      ++batch.num_active;
    } else {
      obs.user_index = e.stream_index;
      obs.state = e.state;
      ++batch.num_active;
    }
    batch.observations.push_back(obs);
  }
  const double merge_s = merge_watch.ElapsedSeconds();
  const size_t merged = batch.observations.size();
  if (next_index > kMaxStreamIndex) {
    // Refuse before the handler (and before the engine's dense bookkeeping
    // would CHECK-abort): the round stays open with its events intact. The
    // caller can shed pending enters (Quit cancels them) and retry, but a
    // deployment genuinely holding ~1.07B live-or-window-retained streams
    // has outgrown the 2^30 index space.
    return Status::ResourceExhausted(
        "stream-index space exhausted sealing round " +
        std::to_string(open_round_) + ": " +
        std::to_string(next_index - next_stream_index_) +
        " fresh indices needed past high-water mark " +
        std::to_string(next_stream_index_) + " (cap " +
        std::to_string(kMaxStreamIndex) + ", " + std::to_string(reusable) +
        " recycled indices were available)");
  }

  RETRASYN_RETURN_NOT_OK(handler_(std::move(batch)));
  // The handler consumed the round; its content is final. Journal the round
  // boundary on every shard (fsync point under FsyncPolicy::kEveryRound)
  // before committing. A failure here cannot roll the Tick back — retrying
  // would hand the handler the batch twice — so the round still commits,
  // this Tick returns the journal error, and the session-wide poison blocks
  // every later entry point: each shard's on-disk journal is at most this
  // one boundary behind, and no shard journals past a round a sibling's
  // journal never closed. The remaining shards still get their boundary
  // record (best effort), keeping the streams as aligned as the failure
  // allows.
  Status journaled;
  Stopwatch journal_watch;
  for (auto& shard : shards_) {
    shard->mu.AssertHeld();
    if (shard->journal == nullptr) continue;
    Status st = shard->journal->Append(JournalEvent::Tick());
    if (!st.ok() && journaled.ok()) journaled = st;
  }
  const double journal_s = journal_watch.ElapsedSeconds();
  if (!journaled.ok()) {
    poison_status_ = journaled;
    boundary_poisoned_.store(true, std::memory_order_release);
    if (telemetry_ != nullptr) {
      telemetry_->RecordFailure("ingest_boundary", journaled, open_round_);
    }
  }
  Stopwatch commit_watch;
  next_stream_index_ = next_index;
  if (options_.recycle_stream_indices) {
    // Commit the index lifecycle exactly as the cursors consumed it: drop
    // the used prefix of the free list, retire the peeked buckets (their
    // unconsumed suffix joins the free list), and bucket this round's quits
    // for retirement once the window passes them.
    const size_t consumed_free =
        std::min(free_cursor, free_indices_.size());
    const size_t consumed_retiring = free_cursor - consumed_free;
    free_indices_.erase(free_indices_.begin(),
                        free_indices_.begin() +
                            static_cast<std::ptrdiff_t>(consumed_free));
    size_t skip = consumed_retiring;
    for (size_t b = 0; b < retiring_buckets; ++b) {
      for (uint32_t index : quitted_at_.front().second) {
        if (skip > 0) {
          --skip;
          continue;
        }
        free_indices_.push_back(index);
      }
      quitted_at_.pop_front();
    }
    if (!quit_indices.empty()) {
      quitted_at_.emplace_back(open_round_, std::move(quit_indices));
    }
  }
  if (seal_pool_ != nullptr) {
    seal_pool_->ParallelFor(static_cast<int>(shards_.size()), [this](int i) {
      Shard& shard = *shards_[static_cast<size_t>(i)];
      shard.mu.AssertHeld();  // held by the Tick thread; see ShardLockSet above
      CommitShard(shard);
    });
  } else {
    for (auto& shard : shards_) {
      shard->mu.AssertHeld();
      CommitShard(*shard);
    }
  }
  const double commit_s = commit_watch.ElapsedSeconds();
  rounds_sealed_metric_->Increment();
  entries_merged_metric_->Add(merged);
  seal_hist_->Record(seal_s);
  merge_hist_->Record(merge_s);
  commit_hist_->Record(commit_s);
  if (reused_buffer) obs_buffers_reused_metric_->Increment();
  const int64_t sealed_round = open_round_;
  ++open_round_;
  if (trace_ != nullptr) {
    round_admit_start_ns_.store(0, std::memory_order_relaxed);
    trace_->RecordPhase(sealed_round, RoundPhase::kAdmit, admit_s);
    trace_->RecordPhase(sealed_round, RoundPhase::kSeal, seal_s);
    trace_->RecordPhase(sealed_round, RoundPhase::kMerge, merge_s);
    trace_->RecordPhase(sealed_round, RoundPhase::kJournal, journal_s);
    trace_->RecordPhase(sealed_round, RoundPhase::kCommit, commit_s);
  }
  // Fire the commit hook only when the boundary record reached every shard's
  // journal: a checkpoint captured here must never describe a round the
  // journal does not hold, or recovery could not bridge from checkpoint to
  // journal tail.
  if (journaled.ok() && commit_hook_) commit_hook_(sealed_round);
  return journaled;
}

Status IngestSession::AdvanceTo(int64_t t) {
  if (t < open_round_) {
    return Status::InvalidArgument(
        "cannot advance to timestamp " + std::to_string(t) + "; round " +
        std::to_string(open_round_) +
        " is already open and closed rounds are immutable");
  }
  while (open_round_ < t) {
    RETRASYN_RETURN_NOT_OK(Tick());
  }
  return Status::OK();
}

}  // namespace retrasyn
