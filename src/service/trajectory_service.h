// The long-running service layer around a stream-release engine: the public
// entry point for real-time synthesis under w-event LDP.
//
//   auto service = TrajectoryService::Create(states, config).ValueOrDie();
//   service->AddSink(&release_server);          // push-based consumers
//   IngestSession& session = service->session();
//   session.Enter(42, {x, y});                  // per-user events, any order
//   session.Tick();                             // close the round
//   auto snapshot = service->SnapshotRelease(); // live synthetic database
//
// Unlike the legacy batch pipeline (StreamFeeder + one-shot Finish), the
// service accepts reports while the stream is open, pushes each round's
// release to subscribed ReleaseSinks, and serves non-destructive snapshots of
// the evolving synthetic database at any time. Fully materialized
// StreamDatabases replay through the same path via ReplayDatabase (replay.h).
//
// Round closing runs under one of two policies (RetraSynConfig::sync_policy):
//
//   SyncPolicy::kInline — Tick() runs collection + model update + synthesis
//     + sink delivery on the calling thread. A handler/sink failure fails
//     the Tick, which rolls back and may be retried.
//   SyncPolicy::kAsync  — Tick() seals the round and enqueues it on a
//     bounded queue (backpressure / round_queue_capacity control a full
//     queue); a background closer runs the heavy step and sinks receive
//     releases strictly in round order on a delivery worker. Call Drain()
//     before SnapshotRelease(). Failures surface on the next Tick()/Drain().
//     For a fixed (seed, num_threads) the released bytes equal kInline's.
//
// Durability (optional, RetraSynConfig::journal_dir): every accepted event
// is appended to a segmented write-ahead journal before the session commits
// it, and TrajectoryService::Recover rebuilds a byte-identical service from
// the journal after a crash. See docs/durability.md.
//
// The session/service surface is single-threaded: drive each service from
// one ingest thread (the workers it owns are internal).

#ifndef RETRASYN_SERVICE_TRAJECTORY_SERVICE_H_
#define RETRASYN_SERVICE_TRAJECTORY_SERVICE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "checkpoint/checkpoint_manager.h"
#include "common/mutex.h"
#include "common/status.h"
#include "core/engine.h"
#include "core/release_sink.h"
#include "journal/journal_reader.h"
#include "journal/journal_writer.h"
#include "service/ingest_session.h"
#include "service/round_closer.h"
#include "telemetry/telemetry.h"

namespace retrasyn {

/// \brief Service-layer knobs for engines that are not built from a
/// RetraSynConfig (CreateWithEngine / Attach). Create() derives these from
/// the RetraSynConfig fields of the same names.
struct ServiceOptions {
  SyncPolicy sync_policy = SyncPolicy::kInline;
  int round_queue_capacity = 8;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// Ingest shards (RetraSynConfig::ingest_shards): users are hash-
  /// partitioned across this many independently locked session shards, each
  /// with its own journal stream under journal_dir/shard-NNN when journaling
  /// is on. Released bytes are identical for every shard count; the journal
  /// fingerprint records it, so Recover under a different count is refused.
  int ingest_shards = 1;
  /// Reuse per-round sealing buffers (RetraSynConfig::reuse_seal_buffers).
  bool reuse_seal_buffers = true;
  /// Durable event journal directory; empty disables journaling. The
  /// factories require the directory to hold no existing journal — resume an
  /// existing one through TrajectoryService::Recover instead.
  std::string journal_dir;
  JournalOptions journal;
  /// Stream-index recycling for the session (IngestSessionOptions): re-issue
  /// a quitted stream's index once its quit round has left recycle_window
  /// rounds. Default OFF here — a custom engine must tolerate index reuse
  /// (reset its per-index state by the same quit-round + window rule, as
  /// RetraSynEngine does) before a caller switches it on. Create() copies
  /// RetraSynConfig::recycle_stream_indices / window, so RetraSyn services
  /// recycle by default.
  bool recycle_stream_indices = false;
  int recycle_window = 0;
  /// Periodic checkpointing + journal compaction (checkpoint_manager.h):
  /// every N closed rounds the service captures its full state into
  /// checkpoint_dir and retires journal segments older than the oldest
  /// retained checkpoint minus the w-window, so recovery replays O(window)
  /// rounds instead of the full horizon. Requires journal_dir (a checkpoint
  /// only bridges to a journal suffix) and a RetraSynEngine (custom engines
  /// have no serializable state). 0 disables checkpointing.
  int64_t checkpoint_every_rounds = 0;
  std::string checkpoint_dir;
  int checkpoint_retain = 2;
  /// Spill closed synthetic streams to history files at every checkpoint,
  /// keeping steady-state memory flat over unbounded horizons.
  bool checkpoint_spill_history = true;
  /// Unified telemetry (RetraSynConfig::enable_telemetry): one metrics
  /// registry + round-lifecycle trace threaded through the session, closer,
  /// engine, journal, and checkpoint subsystems, snapshot via
  /// TrajectoryService::telemetry(). Observation-only — released bytes are
  /// byte-identical on or off — and NOT part of the deployment fingerprint.
  bool enable_telemetry = true;

  /// The service-layer fields of \p config, verbatim.
  static ServiceOptions FromConfig(const RetraSynConfig& config);
  Status Validate() const;
};

class TrajectoryService {
 public:
  /// Builds a RetraSyn engine from \p config and wraps it in a service.
  /// Returns InvalidArgument (via RetraSynConfig::Validate) instead of
  /// crashing on a nonsensical configuration. \p states must outlive the
  /// service.
  static Result<std::unique_ptr<TrajectoryService>> Create(
      const StateSpace& states, const RetraSynConfig& config);

  /// Wraps an externally constructed engine (ablation variants, LDP-IDS
  /// baselines). The service takes ownership.
  static Result<std::unique_ptr<TrajectoryService>> CreateWithEngine(
      const StateSpace& states, std::unique_ptr<StreamReleaseEngine> engine,
      const ServiceOptions& options = {});

  /// Wraps a caller-owned engine (must outlive the service). Used by the
  /// evaluation harness, which inspects the engine after the run.
  static Result<std::unique_ptr<TrajectoryService>> Attach(
      const StateSpace& states, StreamReleaseEngine* engine,
      const ServiceOptions& options = {});

  /// Rebuilds a crashed service from its event journal
  /// (\p config.journal_dir): takes the journal's writer lock (so a live
  /// writer can never be truncated underneath — FailedPrecondition if one
  /// holds it), verifies the journal's deployment fingerprint against
  /// \p states + \p config (FailedPrecondition on mismatch: replaying under
  /// a changed deployment would silently diverge), scans the segments,
  /// physically truncates a torn tail in the final segment (at the first
  /// incomplete or checksum-failing record), replays every surviving event
  /// through a fresh session *inline* — byte-identical state by the
  /// Inline-vs-Async invariant — then re-arms the async closer (under
  /// SyncPolicy::kAsync) and reopens the journal for appending in a new
  /// segment. The recovered
  /// service is byte-identical to the pre-crash one as of its last durable
  /// round boundary; events journaled after that boundary are re-buffered
  /// into the open round. A missing or empty journal recovers to a fresh
  /// service, so deployments can always boot through Recover. Sinks are not
  /// replayed — attach them afterwards (they start with the next closed
  /// round; ReleaseServer instances that must cover the recovered prefix can
  /// be rebuilt from SnapshotRelease).
  static Result<std::unique_ptr<TrajectoryService>> Recover(
      const StateSpace& states, const RetraSynConfig& config);

  /// Recover counterparts of CreateWithEngine/Attach, for journaled services
  /// over custom engines: the caller reconstructs the engine exactly as it
  /// did before the crash (the journal's fingerprint binds the state space
  /// and the engine's self-reported name; config equality beyond that is the
  /// caller's contract, exactly as byte-identical replay is). \p options
  /// must name the journal via ServiceOptions::journal_dir.
  static Result<std::unique_ptr<TrajectoryService>> RecoverWithEngine(
      const StateSpace& states, std::unique_ptr<StreamReleaseEngine> engine,
      const ServiceOptions& options);
  static Result<std::unique_ptr<TrajectoryService>> RecoverAttached(
      const StateSpace& states, StreamReleaseEngine* engine,
      const ServiceOptions& options);

  /// Joins the async workers, discarding rounds still queued; Drain() first
  /// to guarantee every submitted round reached the engine and sinks.
  ~TrajectoryService();

  /// The ingestion endpoint. Rounds closed through it drive the engine and
  /// notify sinks.
  IngestSession& session() { return *session_; }
  const IngestSession& session() const { return *session_; }

  /// Subscribes \p sink (not owned; must outlive the service) to every
  /// subsequently closed round. Safe to call mid-stream; the sink starts
  /// receiving with the next round closed after the subscription (releases
  /// are only built for rounds that close with at least one sink attached).
  void AddSink(ReleaseSink* sink);

  /// Rounds accepted by the session. Under kAsync this counts rounds still
  /// in the closing pipeline; the engine has consumed all of them only after
  /// a successful Drain().
  int64_t rounds_closed() const { return session_->open_round(); }

  /// Barrier: returns once every accepted round has been closed and its
  /// release delivered to the sinks, surfacing any deferred pipeline error
  /// (sticky). Immediate under kInline. Required before SnapshotRelease()
  /// under kAsync.
  Status Drain();

  /// Alias for Drain(), for callers that think in flush terms.
  Status Flush() { return Drain(); }

  /// Non-destructive snapshot of the synthetic database over the rounds
  /// closed so far. The stream stays open; snapshot as often as needed.
  /// Fails with FailedPrecondition before the first closed round or when
  /// async rounds are still in flight (Drain() first).
  Result<CellStreamSet> SnapshotRelease() const;

  /// Snapshot over an explicit horizon >= rounds_closed() (e.g. the full
  /// planned stream length, for comparison against ground truth indices).
  Result<CellStreamSet> SnapshotRelease(int64_t num_timestamps) const;

  const StreamReleaseEngine& engine() const { return *engine_; }

  /// Ingest-side counters (per-shard depths, seal/merge/commit timings);
  /// see IngestStats. Snapshot-consistent only after Drain().
  IngestStats ingest_stats() const { return session_->stats(); }

  /// Snapshot of the unified telemetry subsystem: every registered metric
  /// (counters, gauges, latency histograms across ingest, closing,
  /// synthesis, journal, and checkpoint), the recent per-round phase traces,
  /// and the first sticky failure. `enabled` is false — and everything else
  /// empty — when ServiceOptions::enable_telemetry is off. Render with
  /// PrometheusText() (telemetry/prometheus_writer.h) for scraping.
  TelemetrySnapshot telemetry() const;

  /// The attached event journal — shard 0's under sharded ingestion;
  /// nullptr when journaling is disabled.
  const JournalWriter* journal() const {
    return journals_.empty() ? nullptr : journals_.front().get();
  }
  /// Shard \p shard's journal; nullptr when journaling is disabled.
  const JournalWriter* journal(size_t shard) const {
    return shard < journals_.size() ? journals_[shard].get() : nullptr;
  }
  size_t num_journals() const { return journals_.size(); }

  /// The checkpoint + compaction subsystem; nullptr when disabled.
  const CheckpointManager* checkpoint() const { return checkpoint_.get(); }

  /// The underlying engine when it is a RetraSynEngine (always the case for
  /// Create()-built services); nullptr otherwise. Exposes privacy accounting
  /// (budget ledger, report tracker) to auditors.
  const RetraSynEngine* retrasyn_engine() const { return retrasyn_; }

 private:
  /// \p defer_async_closer leaves the closer un-armed even under kAsync, so
  /// Recover can replay the journal inline before ArmCloser re-enables it.
  TrajectoryService(const StateSpace& states,
                    std::unique_ptr<StreamReleaseEngine> owned,
                    StreamReleaseEngine* engine, const ServiceOptions& options,
                    std::vector<std::unique_ptr<JournalWriter>> journals,
                    bool defer_async_closer = false);

  /// Builds the async round-closing pipeline (kAsync only).
  void ArmCloser(const ServiceOptions& options);
  /// Feeds recovered events through the (inline) session, round-locked
  /// across the shard journals: each scan's events are bucketed into rounds
  /// by its boundary records (numbered from its own base round), rounds
  /// before \p resume_round are skipped — a restored checkpoint already
  /// holds their effect — and rounds up to \p target_round (the durable
  /// minimum across shards) are Ticked; trailing events re-buffer into the
  /// open round.
  Status ReplayJournals(const std::vector<JournalScan>& scans,
                        int64_t resume_round, int64_t target_round);
  /// Shared recovery flow behind Recover/RecoverWithEngine/RecoverAttached:
  /// lock, fingerprint check, tail truncation, inline replay, re-arm.
  static Result<std::unique_ptr<TrajectoryService>> RecoverImpl(
      const StateSpace& states, std::unique_ptr<StreamReleaseEngine> owned,
      StreamReleaseEngine* engine, const ServiceOptions& options,
      uint64_t fingerprint);

  /// The session's round handler: inline, runs the round to completion;
  /// async, submits it to the closer.
  Status OnRound(TimestampBatch batch);
  /// The heavy round step: engine Observe + release construction. Runs on
  /// the ingest thread (kInline) or the closer worker (kAsync).
  Result<RoundRelease> CloseRound(const TimestampBatch& batch);
  /// Fans \p round out to the subscribed sinks, stopping at the first error.
  Status Deliver(const RoundRelease& round);

  /// Declared first so it is destroyed LAST: every component below holds raw
  /// pointers into its registry/trace until its own destructor runs. Null
  /// when telemetry is disabled.
  std::unique_ptr<Telemetry> telemetry_;

  const StateSpace* states_;
  std::unique_ptr<StreamReleaseEngine> owned_engine_;
  StreamReleaseEngine* engine_;      ///< owned_engine_.get() or caller-owned
  const RetraSynEngine* retrasyn_ = nullptr;
  /// Mutable view of retrasyn_, for checkpoint capture/restore (state
  /// save/take/restore are non-const). Null for custom engines.
  RetraSynEngine* retrasyn_mutable_ = nullptr;
  std::unique_ptr<IngestSession> session_;
  /// One writer per ingest shard (a single one unsharded); empty =
  /// journaling disabled.
  std::vector<std::unique_ptr<JournalWriter>> journals_;
  std::unique_ptr<CheckpointManager> checkpoint_;  ///< null = disabled

  mutable Mutex sinks_mu_;  ///< AddSink vs. the delivery worker
  std::vector<ReleaseSink*> sinks_ GUARDED_BY(sinks_mu_);

  std::unique_ptr<RoundCloser> closer_;  ///< null under SyncPolicy::kInline
  /// Inline-mode counterpart of the closer's sticky error: a sink failure
  /// after the engine consumed the round (failing that Tick would make a
  /// retry double-observe the batch). Surfaces on the next Tick()/Drain().
  /// Confined to the ingest thread (inline mode runs close + delivery
  /// there), so unguarded by design.
  Status inline_error_;

  // Service-level round timing (null when telemetry is off): the close and
  // delivery phases as the service sees them, on whichever thread runs them
  // (ingest under kInline, the closer/delivery workers under kAsync).
  LatencyHistogram* close_hist_ = nullptr;
  LatencyHistogram* deliver_hist_ = nullptr;
  RoundTrace* trace_ = nullptr;
};

}  // namespace retrasyn

#endif  // RETRASYN_SERVICE_TRAJECTORY_SERVICE_H_
