// The long-running service layer around a stream-release engine: the public
// entry point for real-time synthesis under w-event LDP.
//
//   auto service = TrajectoryService::Create(states, config).ValueOrDie();
//   service->AddSink(&release_server);          // push-based consumers
//   IngestSession& session = service->session();
//   session.Enter(42, {x, y});                  // per-user events, any order
//   session.Tick();                             // close the round
//   auto snapshot = service->SnapshotRelease(); // live synthetic database
//
// Unlike the legacy batch pipeline (StreamFeeder + one-shot Finish), the
// service accepts reports while the stream is open, pushes each round's
// release to subscribed ReleaseSinks, and serves non-destructive snapshots of
// the evolving synthetic database at any time. Fully materialized
// StreamDatabases replay through the same path via ReplayDatabase (replay.h).

#ifndef RETRASYN_SERVICE_TRAJECTORY_SERVICE_H_
#define RETRASYN_SERVICE_TRAJECTORY_SERVICE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "core/release_sink.h"
#include "service/ingest_session.h"

namespace retrasyn {

class TrajectoryService {
 public:
  /// Builds a RetraSyn engine from \p config and wraps it in a service.
  /// Returns InvalidArgument (via RetraSynConfig::Validate) instead of
  /// crashing on a nonsensical configuration. \p states must outlive the
  /// service.
  static Result<std::unique_ptr<TrajectoryService>> Create(
      const StateSpace& states, const RetraSynConfig& config);

  /// Wraps an externally constructed engine (ablation variants, LDP-IDS
  /// baselines). The service takes ownership.
  static Result<std::unique_ptr<TrajectoryService>> CreateWithEngine(
      const StateSpace& states, std::unique_ptr<StreamReleaseEngine> engine);

  /// Wraps a caller-owned engine (must outlive the service). Used by the
  /// evaluation harness, which inspects the engine after the run.
  static Result<std::unique_ptr<TrajectoryService>> Attach(
      const StateSpace& states, StreamReleaseEngine* engine);

  /// The ingestion endpoint. Rounds closed through it drive the engine and
  /// notify sinks.
  IngestSession& session() { return *session_; }
  const IngestSession& session() const { return *session_; }

  /// Subscribes \p sink (not owned; must outlive the service) to every
  /// subsequently closed round.
  void AddSink(ReleaseSink* sink);

  /// Number of closed rounds; the release horizon of SnapshotRelease().
  int64_t rounds_closed() const { return session_->open_round(); }

  /// Non-destructive snapshot of the synthetic database over the rounds
  /// closed so far. The stream stays open; snapshot as often as needed.
  /// Fails with FailedPrecondition before the first closed round.
  Result<CellStreamSet> SnapshotRelease() const;

  /// Snapshot over an explicit horizon >= rounds_closed() (e.g. the full
  /// planned stream length, for comparison against ground truth indices).
  Result<CellStreamSet> SnapshotRelease(int64_t num_timestamps) const;

  const StreamReleaseEngine& engine() const { return *engine_; }

  /// The underlying engine when it is a RetraSynEngine (always the case for
  /// Create()-built services); nullptr otherwise. Exposes privacy accounting
  /// (budget ledger, report tracker) to auditors.
  const RetraSynEngine* retrasyn_engine() const { return retrasyn_; }

 private:
  TrajectoryService(const StateSpace& states,
                    std::unique_ptr<StreamReleaseEngine> owned,
                    StreamReleaseEngine* engine);

  Status OnRound(const TimestampBatch& batch);

  const StateSpace* states_;
  std::unique_ptr<StreamReleaseEngine> owned_engine_;
  StreamReleaseEngine* engine_;      ///< owned_engine_.get() or caller-owned
  const RetraSynEngine* retrasyn_ = nullptr;
  std::unique_ptr<IngestSession> session_;
  std::vector<ReleaseSink*> sinks_;
};

}  // namespace retrasyn

#endif  // RETRASYN_SERVICE_TRAJECTORY_SERVICE_H_
