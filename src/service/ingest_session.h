// Online ingestion of per-user trajectory events (the live counterpart of
// StreamFeeder's batch replay).
//
// A session tracks one open round (timestamp) at a time. Users push events
// for the open round in any arrival order:
//
//   Enter(user, point)  — the user's stream begins, reporting its first
//                         location this round (transition state e_c).
//   Move(user, point)   — the user reports its next location; non-adjacent
//                         jumps are clamped to the nearest reachable neighbor
//                         cell, exactly like the batch feeder (the protocol
//                         can only encode feasible transitions).
//   Quit(user)          — the user leaves; per Def. 5 the quit transition
//                         q_c carries the final location reported in the
//                         *previous* round, so Quit is only legal in a round
//                         where the user has not reported a location.
//
// Tick() closes the open round: the buffered events are turned into a
// TimestampBatch (observations ordered deterministically by user id, quit
// events first per user, so results do not depend on arrival order), users
// active in the previous round that sent nothing are quit implicitly
// (matching the paper's preprocessing that splits gapped trajectories into
// several streams), and the batch is handed to the round handler. AdvanceTo
// closes every round up to a target timestamp. A user that quit — explicitly
// or by gap — may Enter again later; that starts a fresh stream.
//
// Sharding (IngestSessionOptions::num_shards): users are partitioned across
// N shards by a hash of the user id. Each shard owns its slice of
// validation, pending-event state, and (when journaling) its own journal
// segment stream, under its own mutex — so N producer threads, each feeding
// the users of one shard (ShardOf), admit events with no shared lock on the
// hot path. Tick() briefly holds every shard's mutex (producers block at the
// round boundary; their events land in the next round), seals the shards in
// parallel on an internal pool into sorted per-shard entry runs, and k-way
// merges the runs into the global observation order. Because users are
// disjoint across shards, the merged sequence is exactly the sequence a
// single shard's global sort produces — so for a fixed shard count the
// sealed batches, the stream-index assignment, and therefore the released
// bytes are identical to num_shards = 1. Tick/AdvanceTo remain
// single-caller: drive them from one thread (the producers may be many).
//
// Stream-index lifecycle: each new stream needs an engine-facing index, and
// over an unbounded horizon a cumulative counter leaks — the engine's dense
// per-index state grows with the highest index ever minted, even at constant
// live population. With IngestSessionOptions::recycle_stream_indices the
// session instead retires an index once its stream's quit round has left the
// w-window (the last round the stream could have reported in) and re-issues
// retired indices, oldest first, before minting fresh ones. Retirement is a
// pure function of the sealed batch sequence — never of round-handler timing
// — so Inline and Async round closing and journal replay all assign
// byte-identical indices. The index space is global across shards (indices
// are assigned on the merged sequence, never per shard). Fresh indices are
// capped at kMaxStreamIndex; Tick() fails with kResourceExhausted (round
// intact, retryable) instead of overflowing into the engine.
//
// All entry points validate and return retrasyn::Status instead of crashing.

#ifndef RETRASYN_SERVICE_INGEST_SESSION_H_
#define RETRASYN_SERVICE_INGEST_SESSION_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "geo/state_space.h"
#include "journal/journal_writer.h"
#include "stream/feeder.h"
#include "telemetry/telemetry.h"

namespace retrasyn {

/// \brief Index-lifecycle and sharding knobs for an IngestSession. The
/// service layer derives these from RetraSynConfig (recycle_stream_indices +
/// window + ingest_shards); the session's consumer — the engine behind the
/// round handler — must apply the same retirement rule to its dense
/// per-index state (RetraSynEngine does; see
/// RetraSynEngine::retired_last_round()).
struct IngestSessionOptions {
  /// Re-issue the index of a quitted stream once its quit round has left the
  /// w-window, instead of growing the cumulative counter forever.
  bool recycle_stream_indices = false;
  /// The w-event window governing retirement; must be >= 1 when recycling.
  int window = 0;
  /// User shards (>= 1). Events route to shard ShardOf(user, num_shards);
  /// each shard has its own mutex, state slice, and journal stream.
  int num_shards = 1;
  /// Reuse per-shard seal scratch and recycle observation buffers across
  /// rounds (see RecycleBatch); false allocates fresh each round (A/B).
  bool reuse_seal_buffers = true;
  /// Service-owned telemetry bundle (not owned; may be null). When attached,
  /// ingest counters register in its registry, Tick() phases land in its
  /// RoundTrace, and boundary poisonings record a first-failure. When null
  /// the session registers its counters in a private registry so stats()
  /// stays a registry view either way — one source of truth.
  Telemetry* telemetry = nullptr;
};

/// \brief Per-shard ingest counters (IngestStats::shards[i]).
struct IngestShardStats {
  uint64_t events_accepted = 0;   ///< events admitted into this shard
  uint64_t events_rejected = 0;   ///< validation failures
  uint64_t pending_events = 0;    ///< queue depth: events buffered now
  uint64_t peak_pending_events = 0;  ///< high-water mark of pending_events
  uint64_t active_streams = 0;    ///< live streams owned by this shard
};

/// \brief Lightweight ingest observability: per-shard queue depths plus the
/// cumulative seal/merge/commit timings of Tick(), so scaling regressions
/// are diagnosable without a profiler. Snapshot via IngestSession::stats()
/// (or TrajectoryService::ingest_stats()); consistent when no producer is
/// concurrently feeding — e.g. after Drain(). Since the telemetry subsystem
/// landed this struct is a *view over the metrics registry* (the session's
/// counters live in MetricsRegistry whether or not a service Telemetry is
/// attached); there is no parallel counter system.
struct IngestStats {
  std::vector<IngestShardStats> shards;
  uint64_t rounds_sealed = 0;      ///< successful Tick() count
  uint64_t entries_merged = 0;     ///< observations across all sealed rounds
  double seal_seconds = 0.0;       ///< parallel per-shard seal phase (wall)
  double merge_seconds = 0.0;      ///< k-way merge + index assignment (wall)
  double commit_seconds = 0.0;     ///< post-handler state commit (wall)
  uint64_t obs_buffers_reused = 0;  ///< batches sealed into a recycled buffer
};

/// \brief Everything a checkpoint needs to reconstruct a session at a round
/// boundary (where pending events are empty by construction). Captured via
/// IngestSession::SaveCheckpointState and reinstated on recovery via
/// RestoreCheckpointState; containers are in deterministic order so two
/// captures of the same logical state serialize byte-identically — and the
/// format is shard-count agnostic (active streams are merged in user order
/// on save and re-distributed by ShardOf on restore), so the same checkpoint
/// bytes describe the same logical session under any sharding.
struct SessionCheckpointState {
  int64_t open_round = 0;
  uint32_t next_stream_index = 0;
  struct ActiveEntry {
    uint64_t user = 0;
    uint32_t stream_index = 0;
    CellId last_cell = 0;
  };
  /// Live streams, sorted by user id.
  std::vector<ActiveEntry> active;
  /// Quit-round buckets awaiting retirement, oldest first.
  std::deque<std::pair<int64_t, std::vector<uint32_t>>> quitted_at;
  /// Retired indices awaiting reuse, FIFO in retirement order.
  std::deque<uint32_t> free_indices;
};

class IngestSession {
 public:
  /// Receives each closed round's batch (timestamps are sequential from 0).
  /// A non-OK return aborts the Tick and is surfaced to the caller; the
  /// round then remains open with its events intact — Tick() commits no
  /// session state (stream indices included) until the handler succeeds, so
  /// a retried Tick() hands the handler a byte-identical batch. The batch is
  /// passed by value so an asynchronous handler can take ownership.
  using RoundHandler = std::function<Status(TimestampBatch batch)>;

  IngestSession(const StateSpace& states, RoundHandler handler,
                IngestSessionOptions options = {});

  /// The shard \p user's events route to under \p num_shards shards — a
  /// mixed hash, so sequential user ids spread evenly. Producer threads that
  /// partition users by this function never contend on a shard mutex.
  static uint32_t ShardOf(uint64_t user, int num_shards);

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Journals every accepted event through \p journal (not owned; may be
  /// null to detach). Single-shard sessions only; sharded sessions attach
  /// one journal per shard via AttachJournals. Appends happen after
  /// validation and *before* the session commits any state, extending
  /// Tick()'s error-atomic contract to durability: an event the journal did
  /// not accept is not buffered, and a round whose boundary record did not
  /// reach the journal... is the one exception — the handler has already
  /// consumed the batch by then, so the round commits in memory, the Tick
  /// returns the journal error, and the failure poisons every later entry
  /// point (the journal never silently diverges by more than that one
  /// boundary record).
  void AttachJournal(JournalWriter* journal);

  /// Sharded counterpart: exactly one journal per shard (shard i's accepted
  /// events and round boundaries append to \p journals[i]), or an empty
  /// vector to detach. A boundary-append failure on ANY shard poisons the
  /// whole session — otherwise healthy shards would keep journaling events
  /// for rounds their sibling's journal never closed, and the shard streams
  /// would diverge beyond the one-boundary contract.
  void AttachJournals(std::vector<JournalWriter*> journals);

  /// Begins a new stream for \p user, reporting \p location this round.
  /// Fails if the user is already active or has already reported this round.
  /// Thread-safe across users of different shards.
  Status Enter(uint64_t user, const Point& location);

  /// Reports \p user's next location this round. Fails if the user never
  /// entered, already quit, or has already reported this round.
  /// Thread-safe across users of different shards.
  Status Move(uint64_t user, const Point& location);

  /// Ends \p user's stream; the quit transition carries the location reported
  /// in the previous round. Fails on double quit or when the user has
  /// Moved this round (quit the round after the final report, or simply stop
  /// sending — silent users are quit automatically). A Quit after an Enter
  /// in the same open round cancels the pending enter instead: no report was
  /// sent yet, so the aborted stream never existed.
  /// Thread-safe across users of different shards.
  Status Quit(uint64_t user);

  /// Closes the open round and advances to the next timestamp. Single
  /// caller; holds every shard's mutex for the duration (producers block at
  /// the boundary and their events land in the next round).
  Status Tick();

  /// Closes rounds until \p t is the open round. Fails when \p t lies in the
  /// past (already-closed rounds are immutable).
  Status AdvanceTo(int64_t t);

  /// The timestamp events currently apply to. Rounds [0, open_round()) are
  /// closed.
  int64_t open_round() const { return open_round_; }

  /// Users holding a live stream: reported a location in the last closed
  /// round and not yet quit this round, or entered in the open one.
  size_t num_active_users() const;

  /// Events buffered for the open round.
  size_t num_pending_events() const;

  /// Per-shard counters + cumulative Tick phase timings. See IngestStats.
  IngestStats stats() const;

  /// Returns a consumed batch's observation buffer to the seal pool so the
  /// next round seals into it instead of allocating
  /// (IngestSessionOptions::reuse_seal_buffers; no-op otherwise). Called by
  /// the service after the engine observed the batch — from the closer
  /// worker under SyncPolicy::kAsync, so it is thread-safe.
  void RecycleBatch(TimestampBatch&& batch);

  /// High-water mark of the cumulative index counter: the next index a fresh
  /// stream would mint when no retired index is available. With recycling
  /// this stays bounded by peak concurrent streams + one window of churn;
  /// without it, it counts every stream ever started.
  uint32_t index_high_water() const { return next_stream_index_; }

  /// Retired indices currently available for reuse.
  size_t num_free_indices() const { return free_indices_.size(); }

  /// Quitted indices still inside the w-window, awaiting retirement.
  size_t num_retiring_indices() const;

  /// Test-only: fast-forwards the cumulative counter so the kMaxStreamIndex
  /// exhaustion path is reachable without minting a billion streams.
  void set_next_stream_index_for_testing(uint32_t next) {
    next_stream_index_ = next;
  }

  /// Captures the session's round-boundary state for a checkpoint. Only legal
  /// between rounds — no buffered events — which the round-commit hook point
  /// satisfies by construction (the hook fires while Tick still holds every
  /// shard mutex, so no extra synchronization is needed or taken here).
  SessionCheckpointState SaveCheckpointState() const;

  /// Reinstates checkpointed state into a freshly constructed session (no
  /// rounds closed, no events buffered). Validates index-lifecycle integrity
  /// — every index below the high-water mark, held in at most one place —
  /// and refuses corrupt state with kInvalidArgument. Active streams are
  /// distributed to shards by ShardOf, so a checkpoint restores under any
  /// shard count (the journal fingerprint, not the checkpoint, pins it).
  Status RestoreCheckpointState(SessionCheckpointState state);

  /// Invoked at the end of every successful Tick() — after the round has
  /// committed in memory AND its boundary record reached every shard's
  /// journal — with the sealed round's timestamp. The checkpoint subsystem
  /// hooks this to capture SaveCheckpointState() at a consistent boundary; a
  /// checkpoint therefore never describes a round the journal does not hold.
  void SetRoundCommitHook(std::function<void(int64_t)> hook) {
    commit_hook_ = std::move(hook);
  }

 private:
  struct PendingRound {
    bool quit = false;          ///< explicit Quit buffered this round
    bool has_location = false;  ///< Enter or Move buffered this round
    bool is_enter = false;
    CellId cell = 0;            ///< located (and clamped) report
  };

  struct ActiveStream {
    uint32_t stream_index = 0;  ///< engine-facing index of this segment
    CellId last_cell = 0;       ///< last reported (clamped) cell
  };

  /// One event of the sealed round, fully resolved during the parallel
  /// per-shard seal (transition state and — for quits/moves — the stream
  /// index are pure functions of shard state); only an enter's stream index
  /// waits for the global merge, which assigns it on the merged sequence.
  struct SealedEntry {
    uint64_t user = 0;
    uint32_t stream_index = 0;  ///< quits/moves: owner; enters: merge-assigned
    uint32_t state = 0;         ///< transition-state index of the observation
    CellId cell = 0;            ///< reported cell (phase 1); final (phase 0)
    uint8_t phase = 0;          ///< 0 = quit, 1 = enter/move
    bool is_enter = false;
  };

  /// One user partition: its own mutex, validation + pending state, journal
  /// stream, seal scratch, and counters. Producers lock exactly one shard
  /// per event; Tick() locks them all.
  struct Shard {
    mutable Mutex mu;
    std::unordered_map<uint64_t, ActiveStream> active GUARDED_BY(mu);
    std::unordered_map<uint64_t, PendingRound> pending GUARDED_BY(mu);
    size_t num_pending_enters GUARDED_BY(mu) = 0;
    size_t num_pending_events GUARDED_BY(mu) = 0;
    size_t num_pending_quits GUARDED_BY(mu) = 0;
    /// Not owned; null = no journaling. The pointer itself is guarded (swapped
    /// by AttachJournal(s), read by producers); the pointee synchronizes
    /// internally where it is shared (TakeSealedSegments / presync).
    JournalWriter* journal GUARDED_BY(mu) = nullptr;
    /// Seal scratch, sorted by (user, phase) each round; reused across
    /// rounds under reuse_seal_buffers.
    std::vector<SealedEntry> entries GUARDED_BY(mu);
    /// Registry-backed counters (stable pointers into registry_; set once in
    /// the constructor). IngestStats reads these — one source of truth.
    Counter* accepted_metric = nullptr;
    Counter* rejected_metric = nullptr;
    Gauge* pending_metric = nullptr;
    Gauge* peak_pending_metric = nullptr;
    Gauge* active_metric = nullptr;
  };

  Shard& shard_of(uint64_t user) {
    return *shards_[ShardOf(user, static_cast<int>(shards_.size()))];
  }

  /// RAII all-shards acquisition in ascending index order — the documented
  /// Tick-time protocol (producers lock exactly one shard, so index order
  /// alone rules out deadlock). A variable-count acquisition is outside the
  /// analysis's vocabulary, so the constructor/destructor opt out and every
  /// user re-establishes per-shard custody with shard.mu.AssertHeld().
  class ShardLockSet {
   public:
    explicit ShardLockSet(const std::vector<std::unique_ptr<Shard>>& shards)
        NO_THREAD_SAFETY_ANALYSIS : shards_(shards) {
      for (const auto& shard : shards_) shard->mu.Lock();
    }
    ~ShardLockSet() NO_THREAD_SAFETY_ANALYSIS {
      for (auto it = shards_.rbegin(); it != shards_.rend(); ++it) {
        (*it)->mu.Unlock();
      }
    }
    ShardLockSet(const ShardLockSet&) = delete;
    ShardLockSet& operator=(const ShardLockSet&) = delete;

   private:
    const std::vector<std::unique_ptr<Shard>>& shards_;
  };

  /// The sticky session-wide failure set when a round-boundary record missed
  /// any shard's journal (OK while healthy). Checked by every entry point.
  Status BoundaryPoison() const;

  Status EnterLocked(Shard& shard, uint64_t user, const Point& location)
      REQUIRES(shard.mu);
  Status MoveLocked(Shard& shard, uint64_t user, const Point& location)
      REQUIRES(shard.mu);
  Status QuitLocked(Shard& shard, uint64_t user) REQUIRES(shard.mu);

  /// Builds \p shard's sorted entry run for the round being sealed. Pure
  /// per-shard work (runs on the seal pool while the Tick thread holds every
  /// shard mutex); mutates only the shard's scratch, never its committed
  /// state.
  void SealShard(Shard& shard) REQUIRES(shard.mu);
  /// Applies the sealed round to \p shard's committed state, in place:
  /// quits erase, locations overwrite/insert. O(events), allocation-free at
  /// steady state.
  void CommitShard(Shard& shard) REQUIRES(shard.mu);

  /// Pops a recycled observation buffer (reuse_seal_buffers) or returns a
  /// fresh one. \p reused reports which.
  std::vector<UserObservation> AcquireObservationBuffer(bool* reused);

  /// Registers the session's metrics (called once from the constructor).
  void RegisterMetrics();
  /// Stamps the wall of the first event admitted into the open round, for
  /// the RoundTrace admit phase. Only called when a trace is attached.
  void NoteAdmission();

  const StateSpace* states_;
  const SpatialGrid* grid_;
  RoundHandler handler_;
  IngestSessionOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Seal/commit executors for num_shards > 1 (null otherwise): sized
  /// min(num_shards, hardware). Pool size never affects bytes — per-shard
  /// work is a pure function of the shard.
  std::unique_ptr<ThreadPool> seal_pool_;
  // Tick-thread lifecycle state (commit_hook_, open_round_,
  // next_stream_index_, and quitted_at_/free_indices_ below): written only by
  // the single Tick/AdvanceTo caller while it holds every shard mutex.
  // open_round_ is additionally read by producers inside the *Locked helpers
  // (error messages) under their one shard mutex — "any shard lock to read,
  // all shard locks to write", a protocol GUARDED_BY cannot name (see
  // docs/concurrency.md).
  std::function<void(int64_t)> commit_hook_;
  int64_t open_round_ = 0;
  uint32_t next_stream_index_ = 0;

  /// Round-boundary journal poison: set once by Tick (single caller), read
  /// by concurrent producers. poison_status_ is written before the release
  /// store and never mutated after.
  std::atomic<bool> boundary_poisoned_{false};
  Status poison_status_;

  // Recycled observation buffers (reuse_seal_buffers): consumed batches come
  // back through RecycleBatch — possibly from the async closer worker —
  // and the next Tick seals into one instead of allocating.
  mutable Mutex obs_pool_mu_;
  std::vector<std::vector<UserObservation>> obs_pool_ GUARDED_BY(obs_pool_mu_);

  // Telemetry plumbing. registry_ always points at a live registry — the
  // service's (options_.telemetry) or the session-private owned_registry_ —
  // so the Tick-phase aggregates and shard counters have exactly one home.
  // trace_/telemetry_ stay null when detached; those paths are skipped.
  Telemetry* telemetry_ = nullptr;
  std::unique_ptr<MetricsRegistry> owned_registry_;
  MetricsRegistry* registry_ = nullptr;
  RoundTrace* trace_ = nullptr;
  Counter* rounds_sealed_metric_ = nullptr;
  Counter* entries_merged_metric_ = nullptr;
  Counter* obs_buffers_reused_metric_ = nullptr;
  LatencyHistogram* seal_hist_ = nullptr;
  LatencyHistogram* merge_hist_ = nullptr;
  LatencyHistogram* commit_hist_ = nullptr;
  /// Steady-clock stamp of the first event admitted into the open round
  /// (0 = none yet); CAS-set by producers, consumed by Tick for the admit
  /// phase. Only touched when trace_ is attached.
  std::atomic<int64_t> round_admit_start_ns_{0};

  // Index lifecycle (recycle_stream_indices only; both containers stay empty
  // otherwise). Global across shards — indices are assigned on the merged
  // batch sequence. An index lives in at most one place: a quitted_at_
  // bucket while its quit round is inside the w-window, then free_indices_
  // until it is re-issued.
  /// Quitted indices bucketed by the round their quit observation sealed
  /// into; a bucket retires into free_indices_ once that round leaves the
  /// w-window. Within a bucket, indices follow the batch's user-id order —
  /// deterministic, like everything else about retirement.
  std::deque<std::pair<int64_t, std::vector<uint32_t>>> quitted_at_;
  /// Retired indices awaiting reuse, FIFO in retirement order.
  std::deque<uint32_t> free_indices_;
};

}  // namespace retrasyn

#endif  // RETRASYN_SERVICE_INGEST_SESSION_H_
