// Online ingestion of per-user trajectory events (the live counterpart of
// StreamFeeder's batch replay).
//
// A session tracks one open round (timestamp) at a time. Users push events
// for the open round in any arrival order:
//
//   Enter(user, point)  — the user's stream begins, reporting its first
//                         location this round (transition state e_c).
//   Move(user, point)   — the user reports its next location; non-adjacent
//                         jumps are clamped to the nearest reachable neighbor
//                         cell, exactly like the batch feeder (the protocol
//                         can only encode feasible transitions).
//   Quit(user)          — the user leaves; per Def. 5 the quit transition
//                         q_c carries the final location reported in the
//                         *previous* round, so Quit is only legal in a round
//                         where the user has not reported a location.
//
// Tick() closes the open round: the buffered events are turned into a
// TimestampBatch (observations ordered deterministically by user id, quit
// events first per user, so results do not depend on arrival order), users
// active in the previous round that sent nothing are quit implicitly
// (matching the paper's preprocessing that splits gapped trajectories into
// several streams), and the batch is handed to the round handler. AdvanceTo
// closes every round up to a target timestamp. A user that quit — explicitly
// or by gap — may Enter again later; that starts a fresh stream.
//
// Stream-index lifecycle: each new stream needs an engine-facing index, and
// over an unbounded horizon a cumulative counter leaks — the engine's dense
// per-index state grows with the highest index ever minted, even at constant
// live population. With IngestSessionOptions::recycle_stream_indices the
// session instead retires an index once its stream's quit round has left the
// w-window (the last round the stream could have reported in) and re-issues
// retired indices, oldest first, before minting fresh ones. Retirement is a
// pure function of the sealed batch sequence — never of round-handler timing
// — so Inline and Async round closing and journal replay all assign
// byte-identical indices. Fresh indices are capped at kMaxStreamIndex;
// Tick() fails with kResourceExhausted (round intact, retryable) instead of
// overflowing into the engine.
//
// All entry points validate and return retrasyn::Status instead of crashing.

#ifndef RETRASYN_SERVICE_INGEST_SESSION_H_
#define RETRASYN_SERVICE_INGEST_SESSION_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "geo/state_space.h"
#include "journal/journal_writer.h"
#include "stream/feeder.h"

namespace retrasyn {

/// \brief Index-lifecycle knobs for an IngestSession. The service layer
/// derives these from RetraSynConfig (recycle_stream_indices + window); the
/// session's consumer — the engine behind the round handler — must apply the
/// same retirement rule to its dense per-index state (RetraSynEngine does;
/// see RetraSynEngine::retired_last_round()).
struct IngestSessionOptions {
  /// Re-issue the index of a quitted stream once its quit round has left the
  /// w-window, instead of growing the cumulative counter forever.
  bool recycle_stream_indices = false;
  /// The w-event window governing retirement; must be >= 1 when recycling.
  int window = 0;
};

/// \brief Everything a checkpoint needs to reconstruct a session at a round
/// boundary (where pending events are empty by construction). Captured via
/// IngestSession::SaveCheckpointState and reinstated on recovery via
/// RestoreCheckpointState; containers are in deterministic order so two
/// captures of the same logical state serialize byte-identically.
struct SessionCheckpointState {
  int64_t open_round = 0;
  uint32_t next_stream_index = 0;
  struct ActiveEntry {
    uint64_t user = 0;
    uint32_t stream_index = 0;
    CellId last_cell = 0;
  };
  /// Live streams, sorted by user id.
  std::vector<ActiveEntry> active;
  /// Quit-round buckets awaiting retirement, oldest first.
  std::deque<std::pair<int64_t, std::vector<uint32_t>>> quitted_at;
  /// Retired indices awaiting reuse, FIFO in retirement order.
  std::deque<uint32_t> free_indices;
};

class IngestSession {
 public:
  /// Receives each closed round's batch (timestamps are sequential from 0).
  /// A non-OK return aborts the Tick and is surfaced to the caller; the
  /// round then remains open with its events intact — Tick() commits no
  /// session state (stream indices included) until the handler succeeds, so
  /// a retried Tick() hands the handler a byte-identical batch. The batch is
  /// passed by value so an asynchronous handler can take ownership.
  using RoundHandler = std::function<Status(TimestampBatch batch)>;

  IngestSession(const StateSpace& states, RoundHandler handler,
                IngestSessionOptions options = {});

  /// Journals every accepted event through \p journal (not owned; may be
  /// null to detach). Appends happen after validation and *before* the
  /// session commits any state, extending Tick()'s error-atomic contract to
  /// durability: an event the journal did not accept is not buffered, and a
  /// round whose boundary record did not reach the journal... is the one
  /// exception — the handler has already consumed the batch by then, so the
  /// round commits in memory, the Tick returns the journal error, and the
  /// writer's sticky failure poisons every later entry point (the journal
  /// never silently diverges by more than that one boundary record).
  void AttachJournal(JournalWriter* journal) { journal_ = journal; }

  /// Begins a new stream for \p user, reporting \p location this round.
  /// Fails if the user is already active or has already reported this round.
  Status Enter(uint64_t user, const Point& location);

  /// Reports \p user's next location this round. Fails if the user never
  /// entered, already quit, or has already reported this round.
  Status Move(uint64_t user, const Point& location);

  /// Ends \p user's stream; the quit transition carries the location reported
  /// in the previous round. Fails on double quit or when the user has
  /// Moved this round (quit the round after the final report, or simply stop
  /// sending — silent users are quit automatically). A Quit after an Enter
  /// in the same open round cancels the pending enter instead: no report was
  /// sent yet, so the aborted stream never existed.
  Status Quit(uint64_t user);

  /// Closes the open round and advances to the next timestamp.
  Status Tick();

  /// Closes rounds until \p t is the open round. Fails when \p t lies in the
  /// past (already-closed rounds are immutable).
  Status AdvanceTo(int64_t t);

  /// The timestamp events currently apply to. Rounds [0, open_round()) are
  /// closed.
  int64_t open_round() const { return open_round_; }

  /// Users holding a live stream: reported a location in the last closed
  /// round and not yet quit this round, or entered in the open one.
  size_t num_active_users() const;

  /// Events buffered for the open round.
  size_t num_pending_events() const;

  /// High-water mark of the cumulative index counter: the next index a fresh
  /// stream would mint when no retired index is available. With recycling
  /// this stays bounded by peak concurrent streams + one window of churn;
  /// without it, it counts every stream ever started.
  uint32_t index_high_water() const { return next_stream_index_; }

  /// Retired indices currently available for reuse.
  size_t num_free_indices() const { return free_indices_.size(); }

  /// Quitted indices still inside the w-window, awaiting retirement.
  size_t num_retiring_indices() const;

  /// Test-only: fast-forwards the cumulative counter so the kMaxStreamIndex
  /// exhaustion path is reachable without minting a billion streams.
  void set_next_stream_index_for_testing(uint32_t next) {
    next_stream_index_ = next;
  }

  /// Captures the session's round-boundary state for a checkpoint. Only legal
  /// between rounds — no buffered events — which the round-commit hook point
  /// satisfies by construction.
  SessionCheckpointState SaveCheckpointState() const;

  /// Reinstates checkpointed state into a freshly constructed session (no
  /// rounds closed, no events buffered). Validates index-lifecycle integrity
  /// — every index below the high-water mark, held in at most one place —
  /// and refuses corrupt state with kInvalidArgument.
  Status RestoreCheckpointState(SessionCheckpointState state);

  /// Invoked at the end of every successful Tick() — after the round has
  /// committed in memory AND its boundary record reached the journal — with
  /// the sealed round's timestamp. The checkpoint subsystem hooks this to
  /// capture SaveCheckpointState() at a consistent boundary; a checkpoint
  /// therefore never describes a round the journal does not yet hold.
  void SetRoundCommitHook(std::function<void(int64_t)> hook) {
    commit_hook_ = std::move(hook);
  }

 private:
  struct PendingRound {
    bool quit = false;          ///< explicit Quit buffered this round
    bool has_location = false;  ///< Enter or Move buffered this round
    bool is_enter = false;
    CellId cell = 0;            ///< located (and clamped) report
  };

  struct ActiveStream {
    uint32_t stream_index = 0;  ///< engine-facing index of this segment
    CellId last_cell = 0;       ///< last reported (clamped) cell
  };

  /// Appends \p event to the attached journal; OK when detached.
  Status JournalAppend(const JournalEvent& event);

  const StateSpace* states_;
  const Grid* grid_;
  RoundHandler handler_;
  IngestSessionOptions options_;
  JournalWriter* journal_ = nullptr;  ///< not owned; null = no journaling
  std::function<void(int64_t)> commit_hook_;
  int64_t open_round_ = 0;
  uint32_t next_stream_index_ = 0;

  /// Streams that reported a location in the last closed round.
  std::unordered_map<uint64_t, ActiveStream> active_;
  /// Events buffered for the open round.
  std::unordered_map<uint64_t, PendingRound> pending_;
  size_t num_pending_enters_ = 0;

  // Index lifecycle (recycle_stream_indices only; both containers stay empty
  // otherwise). An index lives in at most one place: a quitted_at_ bucket
  // while its quit round is inside the w-window, then free_indices_ until it
  // is re-issued.
  /// Quitted indices bucketed by the round their quit observation sealed
  /// into; a bucket retires into free_indices_ once that round leaves the
  /// w-window. Within a bucket, indices follow the batch's user-id order —
  /// deterministic, like everything else about retirement.
  std::deque<std::pair<int64_t, std::vector<uint32_t>>> quitted_at_;
  /// Retired indices awaiting reuse, FIFO in retirement order.
  std::deque<uint32_t> free_indices_;
};

}  // namespace retrasyn

#endif  // RETRASYN_SERVICE_INGEST_SESSION_H_
