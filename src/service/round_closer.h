// The asynchronous round-closing pipeline behind TrajectoryService's
// SyncPolicy::kAsync: the ingest thread seals a round's TimestampBatch and
// Submit()s it to a bounded queue; a dedicated closer worker runs the heavy
// close step (LDP collection + model update + synthesis — the parallel work
// inside still uses the engine's ThreadPool) off the ingest thread; a second
// delivery worker pushes the resulting RoundReleases to sinks. Each stage is
// a single thread consuming a FIFO queue, so rounds close and sinks observe
// releases in strictly increasing timestamp order, and a slow sink delays
// delivery without stalling the closer.
//
// Determinism: the closer invokes the close callback once per round, in
// submission order, from one thread — the same call sequence Inline mode
// makes from the ingest thread — so for a fixed (seed, num_threads) the
// release sequence is byte-identical to Inline.
//
// Stream-index retirement (RetraSynConfig::recycle_stream_indices) rides
// this pipeline: the engine retires quitted indices inside the close step —
// on the closer worker under kAsync — and the resulting RoundRelease carries
// them to sinks in round order. The ingest thread never reads that state; it
// derives the identical retirement independently from the batch sequence
// (IngestSession), which is what keeps Inline and Async assignments
// byte-identical even though the closer lags the ingest thread.
//
// Failure: the first non-OK status from either callback poisons the
// pipeline. Queued rounds are dropped, and the error is returned (sticky)
// from every subsequent Submit() and from Drain() — a handler failure
// surfaces on the next Tick()/Drain() instead of being swallowed. Rounds
// closed before the failure remain delivered and valid.
//
// Thread-safety: Submit()/Drain()/in_flight() may be called from one ingest
// thread; destroying the closer joins the workers and discards any rounds
// still queued (Drain() first to guarantee completion).

#ifndef RETRASYN_SERVICE_ROUND_CLOSER_H_
#define RETRASYN_SERVICE_ROUND_CLOSER_H_

#include <chrono>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>

#include "common/mutex.h"
#include "common/status.h"
#include "core/engine.h"
#include "core/release_sink.h"
#include "stream/feeder.h"
#include "telemetry/telemetry.h"

namespace retrasyn {

class RoundCloser {
 public:
  /// Runs the heavy round work (engine Observe + release construction) on
  /// the closer worker. The returned release is handed to \p deliver.
  using CloseFn = std::function<Result<RoundRelease>(const TimestampBatch&)>;
  /// Fans one release out to the subscribed sinks, on the delivery worker,
  /// in round order.
  using DeliverFn = std::function<Status(const RoundRelease&)>;

  struct Options {
    size_t queue_capacity = 8;  ///< sealed batches waiting for the closer
    BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
    /// Invoked on the closer worker after the close callback has consumed a
    /// batch (whether it succeeded or not — only the buffer matters), so the
    /// observation vector can return to the session's reuse pool instead of
    /// being freed. Optional.
    std::function<void(TimestampBatch&&)> recycle;
    /// Service-owned telemetry (not owned; may be null): queue depth gauge,
    /// queue-wait + close latency histograms, backpressure blocks, and the
    /// sticky-error poisoning counter + first-failure record.
    Telemetry* telemetry = nullptr;
  };

  RoundCloser(Options options, CloseFn close, DeliverFn deliver);
  ~RoundCloser();

  RoundCloser(const RoundCloser&) = delete;
  RoundCloser& operator=(const RoundCloser&) = delete;

  /// Hands a sealed round to the pipeline. Returns the sticky pipeline error
  /// if a previous round failed (the batch is NOT enqueued — the caller's
  /// round state should stay un-committed), ResourceExhausted when the queue
  /// is full under BackpressurePolicy::kFailFast, and otherwise blocks until
  /// a slot frees up.
  Status Submit(TimestampBatch batch) EXCLUDES(mu_);

  /// Barrier: returns once every submitted round has been closed and its
  /// release delivered (or dropped by a failure). Returns the sticky
  /// pipeline error, OK otherwise. Required before SnapshotRelease().
  Status Drain() EXCLUDES(mu_);

  /// Rounds submitted but not yet fully closed + delivered. 0 after a
  /// successful Drain().
  size_t in_flight() const EXCLUDES(mu_);

  /// The sticky pipeline error (OK while healthy). Unlike Drain(), does not
  /// wait for in-flight rounds.
  Status deferred_error() const EXCLUDES(mu_);

 private:
  void CloserLoop() EXCLUDES(mu_);
  void DeliveryLoop() EXCLUDES(mu_);
  /// Drops every queued round/release after a failure.
  void PoisonLocked(const Status& error) REQUIRES(mu_);

  const Options options_;
  const CloseFn close_;
  const DeliverFn deliver_;

  /// One queued round: the sealed batch plus its enqueue time, so the
  /// closer can record how long the round waited behind its predecessors.
  struct QueuedRound {
    TimestampBatch batch;
    std::chrono::steady_clock::time_point enqueued;
  };

  // Telemetry (all null when detached; hot path is a null check).
  Telemetry* telemetry_ = nullptr;
  Gauge* queue_depth_metric_ = nullptr;
  LatencyHistogram* queue_wait_hist_ = nullptr;
  LatencyHistogram* close_hist_ = nullptr;
  Counter* backpressure_blocks_metric_ = nullptr;
  Counter* poisonings_metric_ = nullptr;

  mutable Mutex mu_;
  CondVar cv_;  ///< any state change; waiters re-check
  /// Sealed rounds waiting for the closer.
  std::deque<QueuedRound> rounds_ GUARDED_BY(mu_);
  /// Closed releases waiting for delivery.
  std::deque<RoundRelease> releases_ GUARDED_BY(mu_);
  size_t submitted_ GUARDED_BY(mu_) = 0;
  /// Delivered, failed, or dropped.
  size_t finished_ GUARDED_BY(mu_) = 0;
  Status error_ GUARDED_BY(mu_);  ///< first failure; sticky
  bool stop_ GUARDED_BY(mu_) = false;

  std::thread closer_;
  std::thread delivery_;
};

}  // namespace retrasyn

#endif  // RETRASYN_SERVICE_ROUND_CLOSER_H_
