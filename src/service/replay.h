// Batch -> streaming adapter: feeds a fully materialized StreamDatabase
// through the session API, making the legacy offline pipeline a thin client
// of the service layer. Replays are bit-identical to the historical
// StreamFeeder path: stream indices are used as session user ids and the
// session orders each round's observations by user id (quits first), which
// reproduces the feeder's per-batch observation order exactly — so an engine
// driven through ReplayDatabase releases the same synthetic database as one
// driven by precomputed batches, for the same seed.

#ifndef RETRASYN_SERVICE_REPLAY_H_
#define RETRASYN_SERVICE_REPLAY_H_

#include "common/status.h"
#include "service/trajectory_service.h"
#include "stream/stream_database.h"

namespace retrasyn {

/// Replays every stream of \p db through \p service's session — Enter at the
/// stream's first timestamp, Move per subsequent point, Quit one round after
/// the final report — closing each of the db's rounds with Tick(). Requires a
/// fresh service (no rounds closed yet).
Status ReplayDatabase(const StreamDatabase& db, TrajectoryService& service);

}  // namespace retrasyn

#endif  // RETRASYN_SERVICE_REPLAY_H_
