#include "service/replay.h"

#include <cstdint>
#include <vector>

namespace retrasyn {

Status ReplayDatabase(const StreamDatabase& db, TrajectoryService& service) {
  if (service.rounds_closed() != 0 ||
      service.session().num_pending_events() != 0) {
    return Status::FailedPrecondition(
        "ReplayDatabase requires a fresh service; rounds were already "
        "ingested");
  }
  const int64_t horizon = db.num_timestamps();
  const std::vector<UserStream>& streams = db.streams();

  // Stream indices entering at each timestamp, ascending by construction.
  std::vector<std::vector<uint32_t>> entrants(horizon);
  for (uint32_t idx = 0; idx < streams.size(); ++idx) {
    entrants[streams[idx].enter_time].push_back(idx);
  }

  IngestSession& session = service.session();
  std::vector<uint32_t> live;
  for (int64_t t = 0; t < horizon; ++t) {
    // Departures first: streams whose final report was at t - 1. The session
    // would also quit them implicitly, but the explicit event documents the
    // protocol (Def. 5's q_c report).
    for (size_t i = 0; i < live.size();) {
      if (streams[live[i]].end_time() == t) {
        RETRASYN_RETURN_NOT_OK(session.Quit(live[i]));
        live[i] = live.back();
        live.pop_back();
      } else {
        ++i;
      }
    }
    for (uint32_t idx : entrants[t]) {
      RETRASYN_RETURN_NOT_OK(session.Enter(idx, streams[idx].points.front()));
      live.push_back(idx);
    }
    for (uint32_t idx : live) {
      const UserStream& s = streams[idx];
      if (s.enter_time < t) {
        RETRASYN_RETURN_NOT_OK(session.Move(idx, s.At(t)));
      }
    }
    RETRASYN_RETURN_NOT_OK(session.Tick());
  }
  return Status::OK();
}

}  // namespace retrasyn
