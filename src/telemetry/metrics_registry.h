// Low-overhead, thread-safe metrics primitives and the registry that owns
// them.
//
// Design constraints (ISSUE 9):
//  - Hot-path cost is ~one uncontended relaxed atomic add. Counters stripe
//    across cache-line-sized cells indexed by a thread-local stripe id so
//    concurrent writers do not bounce a shared line; histograms use a fixed
//    log2-nanosecond bucket array.
//  - Metric objects have stable addresses for the registry's lifetime:
//    components fetch raw pointers once at attach time and never touch the
//    registry lock again.
//  - Reads (Collect / Snapshot) are approximate under concurrent writes --
//    each cell is read atomically but the sum is not a linearizable cut.
//    That is the standard contract for monitoring counters.
//
// Telemetry is observation-only by construction: nothing in this file feeds
// back into synthesis, privacy accounting, or the deployment fingerprint.

#ifndef RETRASYN_TELEMETRY_METRICS_REGISTRY_H_
#define RETRASYN_TELEMETRY_METRICS_REGISTRY_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"

namespace retrasyn {

/// Monotonic counter. Add() is a single relaxed fetch_add on one of a few
/// cache-line-aligned stripe cells; Value() sums the stripes.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment() { Add(1); }
  void Add(uint64_t delta);
  uint64_t Value() const;

 private:
  static constexpr size_t kStripes = 8;
  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };
  Cell cells_[kStripes];
};

/// Last-value gauge (queue depths, live-stream counts, high-water marks).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  /// Monotonic high-water update (CAS loop; contention-free in practice).
  void SetMax(int64_t value);
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time copy of a histogram's buckets; percentiles are derived here
/// so the live histogram never needs a lock.
struct HistogramSnapshot {
  static constexpr size_t kNumBuckets = 64;

  std::array<uint64_t, kNumBuckets> buckets{};  // raw (non-cumulative) counts
  uint64_t count = 0;
  double sum_seconds = 0.0;

  /// Inclusive upper bound of bucket b, in seconds. Bucket 0 holds zero
  /// durations; bucket b>=1 holds durations in [2^(b-1), 2^b) nanoseconds.
  static double BucketUpperSeconds(size_t bucket);

  /// Quantile estimate (q in [0,1]) by cumulative bucket walk with linear
  /// interpolation inside the landing bucket. Returns 0 when empty.
  double Percentile(double q) const;
  double MeanSeconds() const {
    return count > 0 ? sum_seconds / static_cast<double>(count) : 0.0;
  }
};

/// Fixed-bucket log-scale latency histogram. Record() is three relaxed
/// atomic adds (bucket, count, sum) -- no locks, no allocation.
class LatencyHistogram {
 public:
  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void Record(double seconds);
  void RecordNanos(uint64_t nanos);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double SumSeconds() const {
    return static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) *
           1e-9;
  }
  HistogramSnapshot Snapshot() const;

 private:
  std::atomic<uint64_t> buckets_[HistogramSnapshot::kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_nanos_{0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One collected metric: identity plus a point-in-time value.
struct MetricSample {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0.0;            // counter / gauge
  HistogramSnapshot histogram;   // kHistogram only
};

/// Owns all metrics. Registration (GetCounter/GetGauge/GetHistogram) takes a
/// mutex and dedupes on (name, labels); repeated calls return the same
/// stable pointer. Components register once at attach time and keep the raw
/// pointer -- the hot path never sees this lock.
class MetricsRegistry {
 public:
  using Labels = std::vector<std::pair<std::string, std::string>>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const std::string& help,
                      Labels labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  Labels labels = {});
  LatencyHistogram* GetHistogram(const std::string& name,
                                 const std::string& help, Labels labels = {});

  /// Snapshot of every registered metric, in registration order (stable, so
  /// exposition output is deterministic for a fixed registration sequence).
  std::vector<MetricSample> Collect() const;

 private:
  struct Entry {
    std::string name;
    std::string help;
    MetricKind kind;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };

  Entry* FindOrCreateLocked(const std::string& name, const std::string& help,
                            MetricKind kind, Labels&& labels) REQUIRES(mu_);

  mutable Mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_ GUARDED_BY(mu_);
};

}  // namespace retrasyn

#endif  // RETRASYN_TELEMETRY_METRICS_REGISTRY_H_
