// The per-service telemetry bundle: one MetricsRegistry + one RoundTrace +
// the sticky first-failure record. A TrajectoryService owns exactly one
// Telemetry (when enabled) and hands raw pointers to every layer at attach
// time; components treat a null Telemetry* as "detached" and skip all
// recording, which is how the telemetry-off configuration stays zero-cost.
//
// Everything here is observation-only. Attaching or detaching telemetry
// never changes released bytes -- the same invariant class as
// Inline-vs-Async (tested in tests/service/telemetry_test.cc).

#ifndef RETRASYN_TELEMETRY_TELEMETRY_H_
#define RETRASYN_TELEMETRY_TELEMETRY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "telemetry/metrics_registry.h"
#include "telemetry/round_trace.h"

namespace retrasyn {

/// Sticky record of the first background poisoning: which component failed
/// first, when, and with what status. Background errors (journal fsync,
/// checkpoint worker, async closer) otherwise surface only as a failed
/// *later* Tick(), long after the root cause.
struct FirstFailure {
  bool failed = false;
  std::string component;       // "journal", "checkpoint", "closer", ...
  StatusCode code = StatusCode::kOk;
  std::string message;
  double unix_seconds = 0.0;   // wall clock when the failure was recorded
  int64_t round = -1;          // round being processed, -1 if unknown
};

/// Consistent point-in-time view of the whole subsystem, returned by
/// TrajectoryService::telemetry() and consumed by the Prometheus writer.
struct TelemetrySnapshot {
  bool enabled = false;
  std::vector<MetricSample> metrics;
  std::vector<RoundSpanSnapshot> recent_rounds;
  FirstFailure first_failure;
};

class Telemetry {
 public:
  explicit Telemetry(size_t trace_capacity = 128);
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  MetricsRegistry& registry() { return registry_; }
  RoundTrace& trace() { return trace_; }

  /// Records the first failure only (later calls still bump the component's
  /// poisoning counters at the call site; the sticky record keeps the root
  /// cause). OK statuses are ignored. Thread-safe, callable under component
  /// locks (the internal mutex is a leaf).
  void RecordFailure(const std::string& component, const Status& status,
                     int64_t round = -1);

  FirstFailure first_failure() const;
  TelemetrySnapshot Snapshot() const;

 private:
  MetricsRegistry registry_;
  RoundTrace trace_;
  /// Leaf mutex: RecordFailure is callable while holding any component
  /// lock (closer mu_, checkpoint mu_, shard mu); nothing is acquired under
  /// it. See docs/concurrency.md, lock ordering.
  mutable Mutex failure_mu_;
  FirstFailure first_failure_ GUARDED_BY(failure_mu_);
};

}  // namespace retrasyn

#endif  // RETRASYN_TELEMETRY_TELEMETRY_H_
