// Per-round lifecycle span recorder: a bounded ring buffer of recent rounds,
// each holding a wall-clock start timestamp and the measured duration of
// every pipeline phase (admit -> seal -> merge -> close/synthesis ->
// delivery -> journal -> commit -> checkpoint).
//
// Phases arrive from different threads (ingest thread, async closer,
// delivery worker, checkpoint worker) at different times; the ring is keyed
// by round so late phases land in the right slot. A slot is recycled when a
// newer round maps onto it; phases for rounds that have already been
// recycled are dropped (bounded memory beats completeness here).

#ifndef RETRASYN_TELEMETRY_ROUND_TRACE_H_
#define RETRASYN_TELEMETRY_ROUND_TRACE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/mutex.h"

namespace retrasyn {

enum class RoundPhase : int {
  kAdmit = 0,      // first event admitted -> round boundary (ingest dwell)
  kSeal,           // per-shard seal (parallel) at the boundary
  kMerge,          // deterministic k-way merge of sealed shards
  kClose,          // engine Observe: LDP collection + DMU + synthesis
  kDeliver,        // release construction + sink fan-out
  kJournal,        // round-boundary journal append + fsync
  kCommit,         // index-lifecycle commit + per-shard commit
  kCheckpoint,     // background checkpoint write (when due)
};
inline constexpr int kNumRoundPhases = 8;

const char* RoundPhaseName(RoundPhase phase);

/// One traced round: wall-clock start plus per-phase durations. Phases that
/// did not occur (e.g. checkpoint on a non-cadence round) stay 0.
struct RoundSpanSnapshot {
  int64_t round = -1;
  double start_unix_seconds = 0.0;  // wall clock of the first recorded phase
  std::array<double, kNumRoundPhases> phase_seconds{};
};

class RoundTrace {
 public:
  explicit RoundTrace(size_t capacity = 128);

  /// Records `seconds` for `phase` of `round`. First phase recorded for a
  /// round stamps the slot's wall-clock start. Thread-safe; stale rounds
  /// (already evicted by a newer round in the same slot) are dropped.
  void RecordPhase(int64_t round, RoundPhase phase, double seconds);

  /// Recent rounds in ascending round order (at most `capacity` entries).
  std::vector<RoundSpanSnapshot> Snapshot() const;

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  std::vector<RoundSpanSnapshot> ring_ GUARDED_BY(mu_);
};

}  // namespace retrasyn

#endif  // RETRASYN_TELEMETRY_ROUND_TRACE_H_
