// Prometheus text-format (version 0.0.4) exposition of a TelemetrySnapshot,
// suitable for serving verbatim from a future /metrics endpoint (ROADMAP
// item 2) or dumping from benches/examples (--dump_telemetry).
//
// Output is deterministic for a fixed registration sequence: metrics render
// in registry registration order, histogram buckets in ascending le order
// (only non-empty buckets plus +Inf), labels in registration order.

#ifndef RETRASYN_TELEMETRY_PROMETHEUS_WRITER_H_
#define RETRASYN_TELEMETRY_PROMETHEUS_WRITER_H_

#include <string>

#include "telemetry/telemetry.h"

namespace retrasyn {

/// Renders the snapshot as Prometheus text exposition. Includes a synthetic
/// `retrasyn_first_failure_timestamp_seconds` gauge (labels: component,
/// code) when a sticky failure has been recorded, and per-phase
/// `retrasyn_round_phase_seconds` gauges for the most recent traced round.
std::string PrometheusText(const TelemetrySnapshot& snapshot);

/// Escapes a label value per the exposition format (backslash, quote,
/// newline). Exposed for tests.
std::string EscapeLabelValue(const std::string& value);

}  // namespace retrasyn

#endif  // RETRASYN_TELEMETRY_PROMETHEUS_WRITER_H_
