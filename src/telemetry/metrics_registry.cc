#include "telemetry/metrics_registry.h"

#include <algorithm>
#include <cmath>

namespace retrasyn {
namespace {

/// Stable per-thread stripe index: threads round-robin onto stripes in the
/// order they first touch a counter, so up to kStripes writers never share a
/// cache line.
size_t ThreadStripe() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t stripe =
      next.fetch_add(1, std::memory_order_relaxed);
  return stripe;
}

/// Bucket for a duration of `nanos`: 0 for zero, else floor(log2(nanos))+1
/// clamped to the last bucket, i.e. bucket b>=1 covers [2^(b-1), 2^b) ns.
size_t BucketFor(uint64_t nanos) {
  if (nanos == 0) return 0;
  const size_t bit_width = 64 - static_cast<size_t>(__builtin_clzll(nanos));
  return std::min(bit_width, HistogramSnapshot::kNumBuckets - 1);
}

}  // namespace

// HOT PATH — called per admitted event; striped relaxed add only.
void Counter::Add(uint64_t delta) {
  cells_[ThreadStripe() % kStripes].value.fetch_add(delta,
                                                    std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Cell& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

// HOT PATH — per-event high-water update; lock-free CAS loop only.
void Gauge::SetMax(int64_t value) {
  int64_t current = value_.load(std::memory_order_relaxed);
  while (value > current &&
         !value_.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

double HistogramSnapshot::BucketUpperSeconds(size_t bucket) {
  if (bucket == 0) return 0.0;
  // Upper bound of [2^(b-1), 2^b) ns expressed as 2^b ns.
  return std::ldexp(1.0, static_cast<int>(bucket)) * 1e-9;
}

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const uint64_t prev = cumulative;
    cumulative += buckets[b];
    if (static_cast<double>(cumulative) >= rank) {
      if (b == 0) return 0.0;
      const double lower = std::ldexp(1.0, static_cast<int>(b) - 1) * 1e-9;
      const double upper = BucketUpperSeconds(b);
      const double within =
          (rank - static_cast<double>(prev)) / static_cast<double>(buckets[b]);
      return lower + (upper - lower) * std::min(1.0, std::max(0.0, within));
    }
  }
  return BucketUpperSeconds(kNumBuckets - 1);
}

void LatencyHistogram::Record(double seconds) {
  if (!(seconds > 0.0)) {  // negatives and NaN count as zero-duration
    RecordNanos(0);
    return;
  }
  RecordNanos(static_cast<uint64_t>(seconds * 1e9));
}

// HOT PATH — per-round phase timing; three relaxed adds only.
void LatencyHistogram::RecordNanos(uint64_t nanos) {
  buckets_[BucketFor(nanos)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(nanos, std::memory_order_relaxed);
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snap;
  for (size_t b = 0; b < HistogramSnapshot::kNumBuckets; ++b) {
    snap.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum_seconds = SumSeconds();
  return snap;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreateLocked(
    const std::string& name, const std::string& help, MetricKind kind,
    Labels&& labels) {
  for (const std::unique_ptr<Entry>& entry : entries_) {
    if (entry->name == name && entry->labels == labels) {
      // Same identity must mean same kind; mixing kinds under one name is a
      // programming error and would corrupt exposition output.
      if (entry->kind != kind) return nullptr;
      return entry.get();
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->help = help;
  entry->kind = kind;
  entry->labels = std::move(labels);
  switch (kind) {
    case MetricKind::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      entry->histogram = std::make_unique<LatencyHistogram>();
      break;
  }
  entries_.push_back(std::move(entry));
  return entries_.back().get();
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help, Labels labels) {
  MutexLock lock(mu_);
  Entry* entry =
      FindOrCreateLocked(name, help, MetricKind::kCounter, std::move(labels));
  return entry != nullptr ? entry->counter.get() : nullptr;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help, Labels labels) {
  MutexLock lock(mu_);
  Entry* entry =
      FindOrCreateLocked(name, help, MetricKind::kGauge, std::move(labels));
  return entry != nullptr ? entry->gauge.get() : nullptr;
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name,
                                                const std::string& help,
                                                Labels labels) {
  MutexLock lock(mu_);
  Entry* entry =
      FindOrCreateLocked(name, help, MetricKind::kHistogram, std::move(labels));
  return entry != nullptr ? entry->histogram.get() : nullptr;
}

std::vector<MetricSample> MetricsRegistry::Collect() const {
  MutexLock lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  for (const std::unique_ptr<Entry>& entry : entries_) {
    MetricSample sample;
    sample.name = entry->name;
    sample.help = entry->help;
    sample.kind = entry->kind;
    sample.labels = entry->labels;
    switch (entry->kind) {
      case MetricKind::kCounter:
        sample.value = static_cast<double>(entry->counter->Value());
        break;
      case MetricKind::kGauge:
        sample.value = static_cast<double>(entry->gauge->Value());
        break;
      case MetricKind::kHistogram:
        sample.histogram = entry->histogram->Snapshot();
        break;
    }
    out.push_back(std::move(sample));
  }
  return out;
}

}  // namespace retrasyn
