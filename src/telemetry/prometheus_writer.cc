#include "telemetry/prometheus_writer.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <string>
#include <unordered_set>

namespace retrasyn {
namespace {

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:   return "counter";
    case MetricKind::kGauge:     return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "untyped";
}

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:                 return "Ok";
    case StatusCode::kInvalidArgument:    return "InvalidArgument";
    case StatusCode::kOutOfRange:         return "OutOfRange";
    case StatusCode::kNotFound:           return "NotFound";
    case StatusCode::kIOError:            return "IOError";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kInternal:           return "Internal";
    case StatusCode::kResourceExhausted:  return "ResourceExhausted";
  }
  return "Unknown";
}

void AppendNumber(std::string& out, double value) {
  // Integral values (counters, gauges, bucket counts) render without an
  // exponent or trailing zeros; everything else gets shortest-ish %g.
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    out += buf;
  } else {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    out += buf;
  }
}

using Labels = std::vector<std::pair<std::string, std::string>>;

/// Renders `{k="v",...}` (empty string when no labels). `extra` is appended
/// after the metric's own labels (used for histogram `le`).
std::string RenderLabels(const Labels& labels, const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& kv : labels) {
    if (!first) out += ",";
    first = false;
    out += kv.first;
    out += "=\"";
    out += EscapeLabelValue(kv.second);
    out += "\"";
  }
  if (!extra.empty()) {
    if (!first) out += ",";
    out += extra;
  }
  out += "}";
  return out;
}

void AppendHeader(std::string& out, const MetricSample& sample,
                  std::unordered_set<std::string>& seen) {
  if (!seen.insert(sample.name).second) return;
  out += "# HELP " + sample.name + " " + sample.help + "\n";
  out += "# TYPE " + sample.name + " " + std::string(KindName(sample.kind)) +
         "\n";
}

void AppendHistogram(std::string& out, const MetricSample& sample) {
  const HistogramSnapshot& h = sample.histogram;
  uint64_t cumulative = 0;
  for (size_t b = 0; b < HistogramSnapshot::kNumBuckets; ++b) {
    if (h.buckets[b] == 0) continue;
    cumulative += h.buckets[b];
    char le[64];
    std::snprintf(le, sizeof(le), "le=\"%.9g\"",
                  HistogramSnapshot::BucketUpperSeconds(b));
    out += sample.name + "_bucket" + RenderLabels(sample.labels, le) + " ";
    AppendNumber(out, static_cast<double>(cumulative));
    out += "\n";
  }
  out += sample.name + "_bucket" + RenderLabels(sample.labels, "le=\"+Inf\"") +
         " ";
  AppendNumber(out, static_cast<double>(h.count));
  out += "\n";
  out += sample.name + "_sum" + RenderLabels(sample.labels) + " ";
  AppendNumber(out, h.sum_seconds);
  out += "\n";
  out += sample.name + "_count" + RenderLabels(sample.labels) + " ";
  AppendNumber(out, static_cast<double>(h.count));
  out += "\n";
}

}  // namespace

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"':  out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default:   out += c; break;
    }
  }
  return out;
}

std::string PrometheusText(const TelemetrySnapshot& snapshot) {
  std::string out;
  std::unordered_set<std::string> seen;
  for (const MetricSample& sample : snapshot.metrics) {
    AppendHeader(out, sample, seen);
    if (sample.kind == MetricKind::kHistogram) {
      AppendHistogram(out, sample);
    } else {
      out += sample.name + RenderLabels(sample.labels) + " ";
      AppendNumber(out, sample.value);
      out += "\n";
    }
  }

  if (!snapshot.recent_rounds.empty()) {
    const RoundSpanSnapshot& last = snapshot.recent_rounds.back();
    out +=
        "# HELP retrasyn_round_trace_last_round Most recent round with a "
        "recorded lifecycle trace\n"
        "# TYPE retrasyn_round_trace_last_round gauge\n"
        "retrasyn_round_trace_last_round ";
    AppendNumber(out, static_cast<double>(last.round));
    out += "\n";
    out +=
        "# HELP retrasyn_round_phase_seconds Per-phase duration of the most "
        "recent traced round\n"
        "# TYPE retrasyn_round_phase_seconds gauge\n";
    for (int p = 0; p < kNumRoundPhases; ++p) {
      out += "retrasyn_round_phase_seconds{phase=\"";
      out += RoundPhaseName(static_cast<RoundPhase>(p));
      out += "\"} ";
      AppendNumber(out, last.phase_seconds[static_cast<size_t>(p)]);
      out += "\n";
    }
  }

  if (snapshot.first_failure.failed) {
    const FirstFailure& f = snapshot.first_failure;
    out +=
        "# HELP retrasyn_first_failure_timestamp_seconds Wall-clock time of "
        "the first recorded background failure\n"
        "# TYPE retrasyn_first_failure_timestamp_seconds gauge\n";
    Labels labels = {{"component", f.component},
                     {"code", CodeName(f.code)}};
    if (f.round >= 0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%" PRId64, f.round);
      labels.emplace_back("round", buf);
    }
    out += "retrasyn_first_failure_timestamp_seconds" + RenderLabels(labels) +
           " ";
    AppendNumber(out, f.unix_seconds);
    out += "\n";
  }
  return out;
}

}  // namespace retrasyn
