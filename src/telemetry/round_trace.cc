#include "telemetry/round_trace.h"

#include <algorithm>
#include <chrono>

namespace retrasyn {

const char* RoundPhaseName(RoundPhase phase) {
  switch (phase) {
    case RoundPhase::kAdmit:      return "admit";
    case RoundPhase::kSeal:       return "seal";
    case RoundPhase::kMerge:      return "merge";
    case RoundPhase::kClose:      return "close";
    case RoundPhase::kDeliver:    return "deliver";
    case RoundPhase::kJournal:    return "journal";
    case RoundPhase::kCommit:     return "commit";
    case RoundPhase::kCheckpoint: return "checkpoint";
  }
  return "unknown";
}

RoundTrace::RoundTrace(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)), ring_(capacity_) {}

void RoundTrace::RecordPhase(int64_t round, RoundPhase phase, double seconds) {
  if (round < 0) return;
  MutexLock lock(mu_);
  RoundSpanSnapshot& slot = ring_[static_cast<size_t>(round) % capacity_];
  if (slot.round > round) return;  // slot already recycled for a newer round
  if (slot.round != round) {
    slot = RoundSpanSnapshot{};
    slot.round = round;
    slot.start_unix_seconds =
        std::chrono::duration<double>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
  }
  slot.phase_seconds[static_cast<size_t>(phase)] += seconds;
}

std::vector<RoundSpanSnapshot> RoundTrace::Snapshot() const {
  std::vector<RoundSpanSnapshot> out;
  {
    MutexLock lock(mu_);
    for (const RoundSpanSnapshot& slot : ring_) {
      if (slot.round >= 0) out.push_back(slot);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const RoundSpanSnapshot& a, const RoundSpanSnapshot& b) {
              return a.round < b.round;
            });
  return out;
}

}  // namespace retrasyn
