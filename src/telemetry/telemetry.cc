#include "telemetry/telemetry.h"

#include <chrono>

namespace retrasyn {

Telemetry::Telemetry(size_t trace_capacity) : trace_(trace_capacity) {}

void Telemetry::RecordFailure(const std::string& component,
                              const Status& status, int64_t round) {
  if (status.ok()) return;
  MutexLock lock(failure_mu_);
  if (first_failure_.failed) return;
  first_failure_.failed = true;
  first_failure_.component = component;
  first_failure_.code = status.code();
  first_failure_.message = status.message();
  first_failure_.round = round;
  first_failure_.unix_seconds =
      std::chrono::duration<double>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
}

FirstFailure Telemetry::first_failure() const {
  MutexLock lock(failure_mu_);
  return first_failure_;
}

TelemetrySnapshot Telemetry::Snapshot() const {
  TelemetrySnapshot snap;
  snap.enabled = true;
  snap.metrics = registry_.Collect();
  snap.recent_rounds = trace_.Snapshot();
  snap.first_failure = first_failure();
  return snap;
}

}  // namespace retrasyn
