#include "common/alias_table.h"

#include "common/logging.h"

namespace retrasyn {

void AliasTable::Build(const double* weights, size_t n) {
  prob_.clear();
  alias_.clear();
  small_.clear();
  large_.clear();
  scaled_.clear();
  total_ = 0.0;
  has_mass_ = false;
  if (n == 0) return;
  RETRASYN_CHECK(n <= static_cast<size_t>(UINT32_MAX));

  prob_.resize(n, 0.0);
  alias_.resize(n, 0);
  scaled_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    scaled_[i] = w;
    total_ += w;
  }
  if (total_ <= 0.0) return;
  has_mass_ = true;

  // Vose's stable partition: columns scaled to mean 1, the deficit of each
  // under-full column topped up by exactly one over-full donor.
  const double scale = static_cast<double>(n) / total_;
  for (size_t i = 0; i < n; ++i) {
    scaled_[i] *= scale;
    if (scaled_[i] < 1.0) {
      small_.push_back(static_cast<uint32_t>(i));
    } else {
      large_.push_back(static_cast<uint32_t>(i));
    }
  }
  while (!small_.empty() && !large_.empty()) {
    const uint32_t s = small_.back();
    small_.pop_back();
    const uint32_t l = large_.back();
    prob_[s] = scaled_[s];
    alias_[s] = l;
    scaled_[l] -= 1.0 - scaled_[s];
    if (scaled_[l] < 1.0) {
      large_.pop_back();
      small_.push_back(l);
    }
  }
  // Leftovers are exactly full up to rounding; their alias is never taken.
  for (uint32_t l : large_) {
    prob_[l] = 1.0;
    alias_[l] = l;
  }
  for (uint32_t s : small_) {
    prob_[s] = 1.0;
    alias_[s] = s;
  }
  small_.clear();
  large_.clear();
}

}  // namespace retrasyn
