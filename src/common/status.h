// Status / Result<T> error handling in the Arrow/RocksDB idiom: fallible
// operations (I/O, config validation, parsing) return a Status or Result<T>
// instead of throwing. Hot paths never allocate a Status for the OK case.

#ifndef RETRASYN_COMMON_STATUS_H_
#define RETRASYN_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace retrasyn {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kIOError,
  kFailedPrecondition,
  kInternal,
  kResourceExhausted,
};

/// \brief Outcome of a fallible operation.
///
/// A default-constructed Status is OK and carries no allocation; error
/// statuses hold a code and a human-readable message.
class Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }
  std::string ToString() const;

  /// Aborts the process with the status message if not OK. Use only where an
  /// error indicates a programming bug rather than an environmental failure.
  void CheckOK() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  Status(StatusCode code, std::string msg)
      : rep_(std::make_shared<Rep>(Rep{code, std::move(msg)})) {}

  std::shared_ptr<Rep> rep_;  // nullptr == OK
};

/// \brief Either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : v_(std::move(status)) {}   // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(v_); }
  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(v_);
  }
  T& value() & { return std::get<T>(v_); }
  const T& value() const& { return std::get<T>(v_); }
  T&& value() && { return std::get<T>(std::move(v_)); }

  /// Returns the value, aborting with the error message if this holds an error.
  T ValueOrDie() && {
    if (!ok()) status().CheckOK();
    return std::get<T>(std::move(v_));
  }

 private:
  std::variant<T, Status> v_;
};

#define RETRASYN_RETURN_NOT_OK(expr)                \
  do {                                              \
    ::retrasyn::Status _st = (expr);                \
    if (!_st.ok()) return _st;                      \
  } while (false)

}  // namespace retrasyn

#endif  // RETRASYN_COMMON_STATUS_H_
