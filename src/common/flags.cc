#include "common/flags.h"

#include <cstdlib>
#include <cstring>

namespace retrasyn {

Flags Flags::Parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) {
      flags.positional_.emplace_back(arg);
      continue;
    }
    std::string body(arg + 2);
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags.values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      flags.values_[body] = argv[++i];
    } else {
      flags.values_[body] = "true";
    }
  }
  return flags;
}

std::string Flags::GetString(const std::string& key,
                             const std::string& default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

double Flags::GetDouble(const std::string& key, double default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value : std::strtod(it->second.c_str(), nullptr);
}

int64_t Flags::GetInt(const std::string& key, int64_t default_value) const {
  auto it = values_.find(key);
  return it == values_.end()
             ? default_value
             : std::strtoll(it->second.c_str(), nullptr, 10);
}

bool Flags::GetBool(const std::string& key, bool default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace retrasyn
