// Clang thread-safety analysis annotations, as portable no-op macros.
//
// These expand to Clang's `capability` attribute family when the compiler
// supports it (clang with -Wthread-safety) and to nothing everywhere else, so
// annotated code compiles unchanged under GCC/MSVC. The CI static-analysis
// job builds the tree with clang at -Werror=thread-safety
// -Werror=thread-safety-beta, turning every annotation into a compile-time
// proof obligation: a read of a GUARDED_BY member without its mutex held is a
// build error, not a TSan roll of the dice.
//
// Conventions (see docs/concurrency.md for the full write-up):
//  - Every mutex-protected member is annotated GUARDED_BY(mu) (or
//    PT_GUARDED_BY for the pointee of a guarded pointer).
//  - Private helpers that assume a lock is already held are named *Locked and
//    annotated REQUIRES(mu).
//  - Lock-custody handoffs the analysis cannot see (e.g. the Tick thread
//    holding every shard mutex while seal-pool workers touch shard state)
//    assert the invariant with Mutex::AssertHeld() and a comment explaining
//    the coordinator protocol.
//  - State with a protocol other than a mutex (thread-confined, write-once
//    publication via atomics, handoff-owned) is NOT annotated; the owning
//    protocol is documented at the declaration instead.

#ifndef RETRASYN_COMMON_THREAD_ANNOTATIONS_H_
#define RETRASYN_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define RETRASYN_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define RETRASYN_THREAD_ANNOTATION__(x)  // no-op off clang
#endif

// A type that models a synchronization primitive ("mutex", "shared_mutex"...).
#define CAPABILITY(x) RETRASYN_THREAD_ANNOTATION__(capability(x))

// An RAII type whose constructor acquires a capability and whose destructor
// releases it (MutexLock).
#define SCOPED_CAPABILITY RETRASYN_THREAD_ANNOTATION__(scoped_lockable)

// Data members: reads/writes require the named capability to be held.
#define GUARDED_BY(x) RETRASYN_THREAD_ANNOTATION__(guarded_by(x))
// Pointer members: dereferences require the capability (the pointer itself
// may be read freely).
#define PT_GUARDED_BY(x) RETRASYN_THREAD_ANNOTATION__(pt_guarded_by(x))

// Declaration-site lock-ordering facts, checked by -Wthread-safety-beta.
#define ACQUIRED_BEFORE(...) \
  RETRASYN_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  RETRASYN_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

// Function contracts: the caller must hold (and not release) the capability.
#define REQUIRES(...) \
  RETRASYN_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  RETRASYN_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

// Function acquires/releases the capability (Mutex::Lock / Mutex::Unlock and
// functions that intentionally return with a lock held).
#define ACQUIRE(...) \
  RETRASYN_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  RETRASYN_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) \
  RETRASYN_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  RETRASYN_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

// Function attempts the acquisition; the first argument is the return value
// that means success.
#define TRY_ACQUIRE(...) \
  RETRASYN_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

// The caller must NOT hold the capability (guards against self-deadlock on a
// non-reentrant mutex).
#define EXCLUDES(...) RETRASYN_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

// Runtime assertion that the capability is held; informs the analysis on
// paths where custody was established elsewhere (see Mutex::AssertHeld).
#define ASSERT_CAPABILITY(x) \
  RETRASYN_THREAD_ANNOTATION__(assert_capability(x))

// Returns a reference to the capability guarding the returned data.
#define RETURN_CAPABILITY(x) RETRASYN_THREAD_ANNOTATION__(lock_returned(x))

// Escape hatch: disables analysis for one function. Every use must carry a
// comment explaining why the protocol is sound (and ideally a TSan test).
#define NO_THREAD_SAFETY_ANALYSIS \
  RETRASYN_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // RETRASYN_COMMON_THREAD_ANNOTATIONS_H_
