#include "common/thread_pool.h"

#include "common/logging.h"

namespace retrasyn {

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  RETRASYN_CHECK(num_threads >= 1);
  workers_.reserve(num_threads - 1);
  for (int i = 0; i < num_threads - 1; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

int ThreadPool::DefaultConcurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_ready_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::RunChunks(Job& job) {
  int chunk;
  int done = 0;
  while ((chunk = job.next_chunk.fetch_add(1, std::memory_order_relaxed)) <
         job.num_chunks) {
    (*job.fn)(chunk);
    ++done;
  }
  if (done > 0 &&
      job.pending.fetch_sub(done, std::memory_order_acq_rel) == done) {
    // Last chunk of the job: wake the submitting thread. The lock pairs with
    // the wait in ParallelFor so the notify cannot be lost.
    MutexLock lock(mu_);
    work_done_.NotifyAll();
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      MutexLock lock(mu_);
      while (!stop_ && generation_ == seen_generation) work_ready_.Wait(mu_);
      if (stop_) return;
      seen_generation = generation_;
      job = job_;
    }
    // The shared_ptr pins the job: a worker that was descheduled here and
    // resumes after the job completed finds its ticket exhausted and touches
    // nothing of the (possibly newer) current job.
    if (job) RunChunks(*job);
  }
}

void ThreadPool::ParallelFor(int num_chunks,
                             const std::function<void(int)>& fn) {
  if (num_chunks <= 0) return;
  if (num_chunks == 1 || workers_.empty()) {
    for (int c = 0; c < num_chunks; ++c) fn(c);
    return;
  }
  MutexLock submit_lock(submit_mu_);
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->num_chunks = num_chunks;
  job->pending.store(num_chunks, std::memory_order_relaxed);
  {
    MutexLock lock(mu_);
    job_ = job;
    ++generation_;
  }
  work_ready_.NotifyAll();
  RunChunks(*job);  // the caller is an executor too
  MutexLock lock(mu_);
  while (job->pending.load(std::memory_order_acquire) != 0) {
    work_done_.Wait(mu_);
  }
  // fn's lifetime ends with this call; drop the pool's reference so no worker
  // can observe a dangling fn through job_ (their own pins are ticket-empty).
  job_ = nullptr;
}

}  // namespace retrasyn
