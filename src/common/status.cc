#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace retrasyn {
namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = CodeName(code());
  s += ": ";
  s += message();
  return s;
}

void Status::CheckOK() const {
  if (ok()) return;
  std::fprintf(stderr, "Fatal status: %s\n", ToString().c_str());
  std::abort();
}

}  // namespace retrasyn
