#include "common/rng.h"

#include <cmath>
#include <random>

#include "common/logging.h"

namespace retrasyn {

uint64_t Rng::UniformInt(uint64_t n) {
  RETRASYN_DCHECK(n > 0);
  // Lemire's nearly-divisionless bounded sampling.
  uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t t = -n % n;
    while (l < t) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

uint64_t Rng::Binomial(uint64_t n, double p) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  if (n <= 32) {
    uint64_t c = 0;
    for (uint64_t i = 0; i < n; ++i) c += Bernoulli(p) ? 1 : 0;
    return c;
  }
  std::binomial_distribution<uint64_t> dist(n, p);
  return dist(*this);
}

double Rng::Gaussian(double mean, double stddev) {
  // Box-Muller; u1 is kept away from 0 so log() is finite.
  double u1 = UniformDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = UniformDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * radius * std::cos(2.0 * M_PI * u2);
}

size_t Rng::Discrete(const std::vector<double>& weights) {
  // Single pass (weighted reservoir): item i replaces the current pick with
  // probability w_i / prefix_total_i, which yields exactly w_i / total
  // overall. Unlike the former sum-then-walk two-pass scan this reads the
  // vector once, and it cannot fall off the end on floating-point slack —
  // the pick is always an index with positive weight. Zero total mass still
  // returns weights.size() and negative entries still count as zero.
  double total = 0.0;
  size_t pick = weights.size();
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i];
    if (!(w > 0.0)) continue;  // negatives and NaNs carry no mass
    total += w;
    if (UniformDouble() * total < w) pick = i;
  }
  if (total <= 0.0) return weights.size();
  return pick;
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t n, uint32_t k) {
  RETRASYN_CHECK(k <= n);
  std::vector<uint32_t> out;
  out.reserve(k);
  if (k == 0) return out;
  if (k * 3 < n) {
    // Floyd's algorithm: k draws, no pool shuffle (the bitmap costs O(n) bits
    // but avoids hashing; n is bounded by the user population here).
    std::vector<bool> chosen(n, false);
    for (uint32_t j = n - k; j < n; ++j) {
      uint32_t t = static_cast<uint32_t>(UniformInt(static_cast<uint64_t>(j) + 1));
      if (chosen[t]) t = j;
      chosen[t] = true;
      out.push_back(t);
    }
  } else {
    std::vector<uint32_t> pool(n);
    for (uint32_t i = 0; i < n; ++i) pool[i] = i;
    for (uint32_t i = 0; i < k; ++i) {
      const uint64_t j = i + UniformInt(static_cast<uint64_t>(n - i));
      std::swap(pool[i], pool[j]);
    }
    pool.resize(k);
    out = std::move(pool);
  }
  return out;
}

}  // namespace retrasyn
