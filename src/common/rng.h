// Deterministic pseudo-random number generation. Every stochastic component
// in the library takes an explicit Rng&, so experiments are reproducible
// bit-for-bit given a seed. The engine is xoshiro256** seeded via splitmix64,
// which is both faster than std::mt19937_64 and has better statistical
// properties for the Bernoulli-heavy perturbation workloads here.

#ifndef RETRASYN_COMMON_RNG_H_
#define RETRASYN_COMMON_RNG_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace retrasyn {

/// \brief splitmix64 step; used for seeding and cheap hashing.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// \brief xoshiro256** engine satisfying UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x243f6a8885a308d3ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  uint64_t operator()() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(UniformInt(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return UniformDouble() < p;
  }

  /// Binomial(n, p) sample: direct Bernoulli summation for small n, the
  /// standard-library rejection sampler for large n. Exact in distribution in
  /// both regimes.
  uint64_t Binomial(uint64_t n, double p);

  /// Standard normal via Box-Muller (no cached spare; callers in this codebase
  /// draw rarely enough that caching is not worth statefulness).
  double Gaussian(double mean = 0.0, double stddev = 1.0);

  /// Samples an index in [0, weights.size()) proportional to weights.
  /// Negative weights are treated as zero. Returns weights.size() if the total
  /// mass is zero (caller decides the fallback). Requires the positive mass to
  /// sum below DBL_MAX: an overflowing total degenerates to a deterministic
  /// positive-weight pick (the old two-pass scan degenerated similarly).
  size_t Discrete(const std::vector<double>& weights);

  /// Samples k distinct indices from [0, n) uniformly (Floyd's algorithm when
  /// k << n, otherwise partial Fisher-Yates). Result order is unspecified.
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t k);

  /// Derives an independent child generator; useful for giving each simulated
  /// user or component its own deterministic stream.
  Rng Fork() { return Rng((*this)()); }

  // --- Raw state access (checkpointing) ------------------------------------
  //
  // The full generator state, so a serialized engine resumes the *identical*
  // random sequence. The all-zero state is a fixed point of xoshiro256** and
  // never arises from Seed(); set_state rejects it (no-op) rather than
  // bricking the generator on a hand-crafted checkpoint.

  std::array<uint64_t, 4> state() const { return {s_[0], s_[1], s_[2], s_[3]}; }

  bool set_state(const std::array<uint64_t, 4>& s) {
    if ((s[0] | s[1] | s[2] | s[3]) == 0) return false;
    for (int i = 0; i < 4; ++i) s_[i] = s[i];
    return true;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace retrasyn

#endif  // RETRASYN_COMMON_RNG_H_
