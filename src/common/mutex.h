// Annotated mutex/condition-variable wrappers: the only lock vocabulary in
// this codebase.
//
// Plain std::mutex is invisible to Clang's thread-safety analysis; these thin
// wrappers carry CAPABILITY annotations so every guarded member access is
// checked at compile time (see thread_annotations.h and docs/concurrency.md).
// tools/lint.py enforces that no naked std::mutex / std::lock_guard /
// std::unique_lock / std::condition_variable appears anywhere in src/ outside
// this header.
//
// Zero-cost: Mutex is exactly a std::mutex, MutexLock is exactly a
// lock_guard, and CondVar::Wait is a std::condition_variable wait using the
// adopt-lock trick — no extra state, no virtual calls, no branches.
//
// Usage:
//   class Queue {
//    public:
//     void Push(int v) {
//       MutexLock lock(mu_);
//       items_.push_back(v);
//       cv_.NotifyOne();
//     }
//     int BlockingPop() {
//       MutexLock lock(mu_);
//       while (items_.empty()) cv_.Wait(mu_);  // explicit predicate loop:
//       ...                                    // the analysis sees the reads
//     }
//    private:
//     Mutex mu_;
//     CondVar cv_;
//     std::vector<int> items_ GUARDED_BY(mu_);
//   };
//
// Prefer MutexLock; use manual Lock()/Unlock() only in worker loops that
// hold the lock across iterations with mid-scope release windows (the
// ACQUIRE/RELEASE annotations make clang verify the pairing is balanced on
// every path, which is the hard part of that pattern).

#ifndef RETRASYN_COMMON_MUTEX_H_
#define RETRASYN_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace retrasyn {

class CondVar;

/// A std::mutex that participates in thread-safety analysis.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Tells the analysis this mutex is held on the current path. A no-op at
  /// runtime; use ONLY where custody is real but established out-of-band —
  /// e.g. seal-pool workers running under shard locks held by the Tick
  /// thread, with ThreadPool job handoff providing the happens-before edges.
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for a whole scope (std::lock_guard with annotations).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to Mutex. No predicate overloads on purpose:
/// callers write explicit `while (!pred) cv.Wait(mu);` loops so the guarded
/// reads inside the predicate are visible to the analysis (a lambda passed to
/// std::condition_variable::wait is not).
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases \p mu, blocks, and re-acquires before returning.
  /// Spurious wakeups happen; always wait in a predicate loop.
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's Lock/MutexLock
  }

  /// Like Wait but gives up after \p timeout. Returns false on timeout
  /// (the mutex is re-acquired either way).
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace retrasyn

#endif  // RETRASYN_COMMON_MUTEX_H_
