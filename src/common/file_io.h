// Small POSIX file-system helpers for the durability layer: an appendable
// file that can be flushed and fsync'd explicitly, plus directory listing,
// sizing, whole-file reads, and truncation. Everything returns Status /
// Result — a full disk or a vanished directory is an environmental failure,
// never a crash.

#ifndef RETRASYN_COMMON_FILE_IO_H_
#define RETRASYN_COMMON_FILE_IO_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/status.h"

namespace retrasyn {

/// \brief Creates \p dir (one level) if it does not exist yet.
Status CreateDirIfMissing(const std::string& dir);

/// \brief fsyncs the directory itself, making freshly created (or removed)
/// entries durable — fsync on a file does not cover its directory entry.
Status SyncDir(const std::string& dir);

/// \brief Names (not paths) of the regular files in \p dir, sorted.
Result<std::vector<std::string>> ListDirectory(const std::string& dir);

/// \brief Names (not paths) of the subdirectories of \p dir, sorted
/// ("." and ".." excluded). NotFound when \p dir itself does not exist.
Result<std::vector<std::string>> ListSubdirectories(const std::string& dir);

/// \brief Size of the file at \p path in bytes.
Result<int64_t> FileSize(const std::string& path);

/// \brief Reads the entire file at \p path.
Result<std::string> ReadFileToString(const std::string& path);

/// \brief Truncates the file at \p path to exactly \p size bytes and syncs
/// the change to disk (used to cut a torn journal tail).
Status TruncateFile(const std::string& path, int64_t size);

/// \brief Removes the file at \p path.
Status RemoveFile(const std::string& path);

/// \brief Atomically renames \p from to \p to (same filesystem), replacing
/// any existing \p to. The caller must SyncDir afterwards for the new name
/// to survive a crash — rename alone only orders against other metadata.
Status RenameFile(const std::string& from, const std::string& to);

/// \brief Creates a unique fresh directory `<prefix>XXXXXX` under
/// \p base_dir — or under $TMPDIR (fallback /tmp) when \p base_dir is empty
/// — and returns its path. Used by benches and tests for throwaway journal
/// directories; benches that *measure* fsync cost must pass a base on a
/// real filesystem (e.g. "."), since /tmp is tmpfs on many distros and
/// syncs there are free.
Result<std::string> MakeTempDir(const std::string& prefix,
                                const std::string& base_dir = "");

/// \brief Removes \p dir and everything beneath it, recursing into
/// subdirectories (sharded journal directories hold one subdir per shard).
Status RemoveDirTree(const std::string& dir);

/// \brief An exclusive advisory lock on a file (LevelDB-style LOCK file),
/// created if missing and held until Release()/destruction. Guards a
/// directory owned by a single writer against a second process (or a second
/// handle in this process) opening it concurrently.
class FileLock {
 public:
  /// Fails with FailedPrecondition when another holder has the lock.
  static Result<FileLock> Acquire(const std::string& path);

  FileLock() = default;
  FileLock(FileLock&& other) noexcept
      : fd_(other.fd_), path_(std::move(other.path_)) {
    other.fd_ = -1;
  }
  FileLock& operator=(FileLock&& other) noexcept {
    if (this != &other) {
      Release();
      fd_ = other.fd_;
      path_ = std::move(other.path_);
      other.fd_ = -1;
    }
    return *this;
  }
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;
  ~FileLock() { Release(); }

  bool held() const { return fd_ >= 0; }
  void Release();

 private:
  FileLock(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  int fd_ = -1;
  std::string path_;
};

/// \brief An append-only file with explicit flush/sync control.
///
/// Append buffers through stdio; Flush pushes the buffer to the OS; Sync
/// additionally fsyncs so the bytes survive a power loss. Close implies
/// Flush (but not Sync).
class AppendableFile {
 public:
  /// Opens \p path for appending, creating it if missing.
  static Result<AppendableFile> Open(const std::string& path);

  /// A closed placeholder; Append/Flush/Sync fail until move-assigned from
  /// Open().
  AppendableFile() = default;

  AppendableFile(AppendableFile&& other) noexcept
      : file_(other.file_), path_(std::move(other.path_)) {
    other.file_ = nullptr;
  }
  AppendableFile& operator=(AppendableFile&& other) noexcept {
    if (this != &other) {
      Close();
      file_ = other.file_;
      path_ = std::move(other.path_);
      other.file_ = nullptr;
    }
    return *this;
  }
  AppendableFile(const AppendableFile&) = delete;
  AppendableFile& operator=(const AppendableFile&) = delete;
  ~AppendableFile() { Close(); }

  Status Append(const char* data, size_t size);
  Status Append(const std::string& data) {
    return Append(data.data(), data.size());
  }

  /// Pushes buffered bytes to the OS (visible to readers, not yet durable).
  Status Flush();

  /// Flush + fsync: the appended bytes survive a crash afterwards.
  Status Sync();

  /// Flush + fdatasync: like Sync but may skip non-essential metadata.
  Status SyncData();

  /// The underlying POSIX descriptor (-1 when closed). For callers that
  /// need to fdatasync from another thread while the writer is quiescent.
  int fd() const;

  Status Close();

  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

 private:
  AppendableFile(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}

  std::FILE* file_ = nullptr;
  std::string path_;
};

}  // namespace retrasyn

#endif  // RETRASYN_COMMON_FILE_IO_H_
