// Lightweight check macros. RETRASYN_CHECK is always on (invariants whose
// violation means a programming bug); RETRASYN_DCHECK compiles out in release
// builds and guards hot paths.

#ifndef RETRASYN_COMMON_LOGGING_H_
#define RETRASYN_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

#define RETRASYN_CHECK(cond)                                                    \
  do {                                                                          \
    if (!(cond)) {                                                              \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__, __LINE__,   \
                   #cond);                                                      \
      std::abort();                                                             \
    }                                                                           \
  } while (false)

#define RETRASYN_CHECK_MSG(cond, msg)                                           \
  do {                                                                          \
    if (!(cond)) {                                                              \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,        \
                   __LINE__, #cond, msg);                                       \
      std::abort();                                                             \
    }                                                                           \
  } while (false)

#ifdef NDEBUG
#define RETRASYN_DCHECK(cond) \
  do {                        \
  } while (false)
#else
#define RETRASYN_DCHECK(cond) RETRASYN_CHECK(cond)
#endif

#endif  // RETRASYN_COMMON_LOGGING_H_
