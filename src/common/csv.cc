#include "common/csv.h"

#include <cstdio>
#include <fstream>

namespace retrasyn {

namespace {

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

}  // namespace

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      fields.push_back(Trim(line.substr(start)));
      break;
    }
    fields.push_back(Trim(line.substr(start, comma - start)));
    start = comma + 1;
  }
  return fields;
}

Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open CSV file: " + path);
  }
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    rows.push_back(SplitCsvLine(trimmed));
  }
  return rows;
}

Result<CsvWriter> CsvWriter::Open(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open CSV file for writing: " + path);
  }
  return CsvWriter(f);
}

CsvWriter::~CsvWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  if (file_ == nullptr) return;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) std::fputc(',', file_);
    std::fputs(fields[i].c_str(), file_);
  }
  std::fputc('\n', file_);
}

Status CsvWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Status::IOError("failed to close CSV file");
  return Status::OK();
}

}  // namespace retrasyn
