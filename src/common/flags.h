// Tiny --key=value argument parser shared by the bench and example binaries.
// Not a general-purpose flags library: just enough to parameterize
// experiments (--scale, --seed, --epsilon, ...) with typed accessors and
// defaults.

#ifndef RETRASYN_COMMON_FLAGS_H_
#define RETRASYN_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

namespace retrasyn {

class Flags {
 public:
  /// Parses argv of the form --key=value (or --key value). Unrecognized
  /// positional arguments are collected in positional().
  static Flags Parse(int argc, char** argv);

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string GetString(const std::string& key,
                        const std::string& default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  int64_t GetInt(const std::string& key, int64_t default_value) const;
  bool GetBool(const std::string& key, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace retrasyn

#endif  // RETRASYN_COMMON_FLAGS_H_
