// Minimal CSV reading/writing for trajectory-stream import/export and bench
// result dumps. Handles plain comma-separated numeric/text fields (no quoting
// dialects — the trajectory formats used here never need them).

#ifndef RETRASYN_COMMON_CSV_H_
#define RETRASYN_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace retrasyn {

/// \brief Splits one CSV line on commas, trimming surrounding whitespace.
std::vector<std::string> SplitCsvLine(const std::string& line);

/// \brief Reads an entire CSV file into rows of fields. Lines that are empty
/// or start with '#' are skipped.
Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path);

/// \brief Incremental CSV writer.
class CsvWriter {
 public:
  /// Opens \p path for writing, truncating any existing file.
  static Result<CsvWriter> Open(const std::string& path);

  CsvWriter(CsvWriter&& other) noexcept : file_(other.file_) {
    other.file_ = nullptr;
  }
  CsvWriter& operator=(CsvWriter&& other) noexcept {
    if (this != &other) {
      Close();
      file_ = other.file_;
      other.file_ = nullptr;
    }
    return *this;
  }
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;
  ~CsvWriter();

  void WriteRow(const std::vector<std::string>& fields);
  Status Close();

 private:
  explicit CsvWriter(FILE* f) : file_(f) {}
  FILE* file_ = nullptr;
};

}  // namespace retrasyn

#endif  // RETRASYN_COMMON_CSV_H_
