// CRC32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum guarding every
// journal record against torn writes and bit rot. Software slice-by-4
// implementation: portable, no intrinsics, and fast enough that journal
// appends stay I/O-bound (the round-closing work dwarfs it by orders of
// magnitude).

#ifndef RETRASYN_COMMON_CRC32C_H_
#define RETRASYN_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace retrasyn {

/// Extends \p crc (0 for a fresh checksum) over \p size bytes at \p data.
uint32_t Crc32c(const void* data, size_t size, uint32_t crc = 0);

}  // namespace retrasyn

#endif  // RETRASYN_COMMON_CRC32C_H_
