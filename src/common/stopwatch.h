// Monotonic wall-clock stopwatch used by the efficiency experiments
// (Table V, Figures 6-7).

#ifndef RETRASYN_COMMON_STOPWATCH_H_
#define RETRASYN_COMMON_STOPWATCH_H_

#include <chrono>

namespace retrasyn {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Accumulates per-component time across many timestamps; feeds the
/// component-efficiency table.
class TimeAccumulator {
 public:
  void Add(double seconds) {
    total_ += seconds;
    ++count_;
  }
  double total() const { return total_; }
  double Mean() const { return count_ == 0 ? 0.0 : total_ / count_; }
  long count() const { return count_; }
  void Reset() {
    total_ = 0.0;
    count_ = 0;
  }

 private:
  double total_ = 0.0;
  long count_ = 0;
};

}  // namespace retrasyn

#endif  // RETRASYN_COMMON_STOPWATCH_H_
