// Walker/Vose alias method: O(n) construction, O(1) sampling from a fixed
// discrete distribution (the sampling primitive LDPTrace-style grid
// synthesizers precompute per cell).
//
// Compared with Rng::Discrete — O(n) per draw over the raw weight vector —
// an alias table pays the linear cost once per *distribution change* and then
// answers every draw with one RNG draw, one comparison, and two array reads.
// That is what makes per-point synthesis cost independent of the cell degree
// and of |C|: the tables are cached and invalidated by the mobility model's
// dirty-state log (see core/transition_sampler_cache.h).
//
// Build() reuses the table's internal storage, so steady-state rebuilds of a
// same-sized distribution perform no heap allocation.

#ifndef RETRASYN_COMMON_ALIAS_TABLE_H_
#define RETRASYN_COMMON_ALIAS_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace retrasyn {

class AliasTable {
 public:
  AliasTable() = default;

  /// (Re)builds the table from \p n weights. Negative weights are treated as
  /// zero, matching Rng::Discrete. A zero total mass leaves the table with
  /// has_mass() == false; Sample must not be called in that state (the caller
  /// decides the fallback, again matching Discrete's size() sentinel
  /// contract).
  void Build(const double* weights, size_t n);
  void Build(const std::vector<double>& weights) {
    Build(weights.data(), weights.size());
  }

  size_t size() const { return prob_.size(); }
  bool has_mass() const { return has_mass_; }
  /// Sum of the (clamped) weights the table was built from.
  double total_mass() const { return total_; }

  /// Samples an index in [0, size()) proportional to the build weights.
  /// Requires has_mass(). Consumes exactly one RNG draw: the integer and
  /// fractional parts of one uniform double select the column and the
  /// accept/alias branch (53 mantissa bits cover both for any realistic n).
  // HOT PATH — the per-synthetic-point draw; table lookups only.
  size_t Sample(Rng& rng) const {
    const double x = rng.UniformDouble() * static_cast<double>(prob_.size());
    size_t column = static_cast<size_t>(x);
    if (column >= prob_.size()) column = prob_.size() - 1;  // fp guard
    const double frac = x - static_cast<double>(column);
    return frac < prob_[column] ? column : alias_[column];
  }

 private:
  std::vector<double> prob_;     ///< acceptance threshold per column, in [0,1]
  std::vector<uint32_t> alias_;  ///< overflow target per column
  // Build worklists, kept as members so rebuilds do not allocate.
  std::vector<uint32_t> small_;
  std::vector<uint32_t> large_;
  std::vector<double> scaled_;
  double total_ = 0.0;
  bool has_mass_ = false;
};

}  // namespace retrasyn

#endif  // RETRASYN_COMMON_ALIAS_TABLE_H_
