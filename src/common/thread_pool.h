// A persistent pool of worker threads for chunked parallel loops.
//
// The synthesis phases previously spawned and joined fresh std::threads twice
// per round; at real-time round rates the spawn/join cost rivals the work
// itself. This pool keeps the workers alive across rounds (and across engines:
// TrajectoryService threads one pool through several sessions via
// RetraSynConfig::thread_pool). ParallelFor is called from whatever thread
// drives the engine — the ingest thread under SyncPolicy::kInline, a
// service's round-closer worker under SyncPolicy::kAsync — and concurrent
// callers (several async services sharing one pool) are serialized
// internally, each running its own job to completion.
//
// Determinism contract: ParallelFor hands out chunk *indices*; which thread
// executes which chunk is scheduling-dependent, so callers must make the work
// a pure function of the chunk index (disjoint output slots, per-chunk RNGs).
// Under that discipline results are byte-identical for a fixed chunk count
// regardless of pool size — including a pool of size 1 and no pool at all
// (the synthesizer runs the same chunks inline when it has no pool).

#ifndef RETRASYN_COMMON_THREAD_POOL_H_
#define RETRASYN_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"

namespace retrasyn {

class ThreadPool {
 public:
  /// Creates a pool with \p num_threads total executors: num_threads - 1
  /// background workers plus the thread calling ParallelFor, which always
  /// participates. Requires num_threads >= 1 (1 = no background workers;
  /// ParallelFor then runs every chunk inline).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total executors (background workers + the calling thread).
  int num_threads() const { return num_threads_; }

  /// The hardware's concurrency, floored at 1 (hardware_concurrency() may
  /// report 0 on exotic platforms). The natural pool size for CPU-bound work
  /// like per-shard batch sealing: more threads than cores just adds
  /// scheduling churn.
  static int DefaultConcurrency();

  /// Runs fn(chunk) for every chunk in [0, num_chunks) and returns when all
  /// have completed. Chunks are claimed dynamically (an atomic ticket), so
  /// uneven chunks balance across workers. Safe to call from multiple threads
  /// concurrently: invocations are serialized internally, which is exactly
  /// the sharing discipline multi-tenant sessions need.
  void ParallelFor(int num_chunks, const std::function<void(int)>& fn)
      EXCLUDES(submit_mu_, mu_);

 private:
  /// One ParallelFor invocation. Heap-allocated and pinned by each
  /// participating worker via shared_ptr, so a worker that resumes late finds
  /// an exhausted ticket instead of state recycled for the next job.
  struct Job {
    const std::function<void(int)>* fn = nullptr;
    int num_chunks = 0;
    std::atomic<int> next_chunk{0};  ///< claim ticket
    std::atomic<int> pending{0};     ///< chunks not yet completed
  };

  void WorkerLoop() EXCLUDES(mu_);
  /// Claims and runs chunks of \p job until none remain. Takes mu_ briefly
  /// to publish the final wakeup.
  void RunChunks(Job& job) EXCLUDES(mu_);

  const int num_threads_;
  std::vector<std::thread> workers_;

  /// Serializes concurrent ParallelFor callers; always taken before mu_.
  Mutex submit_mu_ ACQUIRED_BEFORE(mu_);

  Mutex mu_;
  CondVar work_ready_;
  CondVar work_done_;
  std::shared_ptr<Job> job_ GUARDED_BY(mu_);
  /// Bumped per job so workers detect new work.
  uint64_t generation_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
};

}  // namespace retrasyn

#endif  // RETRASYN_COMMON_THREAD_POOL_H_
