#include "common/file_io.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace retrasyn {

namespace {

std::string ErrnoMessage(const std::string& action, const std::string& path) {
  return action + " " + path + ": " + std::strerror(errno);
}

}  // namespace

Status CreateDirIfMissing(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) {
    struct stat st;
    if (::stat(dir.c_str(), &st) != 0) {
      return Status::IOError(ErrnoMessage("stat", dir));
    }
    if (!S_ISDIR(st.st_mode)) {
      return Status::IOError(dir + " exists and is not a directory");
    }
    return Status::OK();
  }
  return Status::IOError(ErrnoMessage("mkdir", dir));
}

Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::IOError(ErrnoMessage("open dir", dir));
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IOError(ErrnoMessage("fsync dir", dir));
  return Status::OK();
}

Result<std::vector<std::string>> ListDirectory(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    if (errno == ENOENT) return Status::NotFound("no such directory: " + dir);
    return Status::IOError(ErrnoMessage("opendir", dir));
  }
  std::vector<std::string> names;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    struct stat st;
    if (::stat((dir + "/" + name).c_str(), &st) == 0 && S_ISREG(st.st_mode)) {
      names.push_back(name);
    }
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

Result<std::vector<std::string>> ListSubdirectories(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    if (errno == ENOENT) return Status::NotFound("no such directory: " + dir);
    return Status::IOError(ErrnoMessage("opendir", dir));
  }
  std::vector<std::string> names;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    struct stat st;
    if (::stat((dir + "/" + name).c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
      names.push_back(name);
    }
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

Result<int64_t> FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Status::IOError(ErrnoMessage("stat", path));
  }
  return static_cast<int64_t>(st.st_size);
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Status::IOError(ErrnoMessage("open", path));
  }
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return Status::IOError(ErrnoMessage("read", path));
  return out;
}

Status TruncateFile(const std::string& path, int64_t size) {
  if (size < 0) {
    return Status::InvalidArgument("negative truncation size");
  }
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Status::IOError(ErrnoMessage("truncate", path));
  }
  // fsync through a read-write descriptor so the shortened length is durable
  // before recovery continues appending after it.
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return Status::IOError(ErrnoMessage("open", path));
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IOError(ErrnoMessage("fsync", path));
  return Status::OK();
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0) {
    return Status::IOError(ErrnoMessage("unlink", path));
  }
  return Status::OK();
}

Status RenameFile(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return Status::IOError(ErrnoMessage("rename", from + " -> " + to));
  }
  return Status::OK();
}

Result<std::string> MakeTempDir(const std::string& prefix,
                                const std::string& base_dir) {
  std::string base = base_dir;
  if (base.empty()) {
    const char* env = std::getenv("TMPDIR");
    base = env != nullptr ? env : "/tmp";
  }
  std::string tmpl = base + "/" + prefix + "XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    return Status::IOError(ErrnoMessage("mkdtemp", tmpl));
  }
  return std::string(buf.data());
}

Status RemoveDirTree(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    if (errno == ENOENT) return Status::OK();
    return Status::IOError(ErrnoMessage("opendir", dir));
  }
  std::vector<std::string> files;
  std::vector<std::string> subdirs;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    struct stat st;
    if (::stat((dir + "/" + name).c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
      subdirs.push_back(name);
    } else {
      files.push_back(name);
    }
  }
  ::closedir(d);
  for (const std::string& name : subdirs) {
    RETRASYN_RETURN_NOT_OK(RemoveDirTree(dir + "/" + name));
  }
  for (const std::string& name : files) {
    RETRASYN_RETURN_NOT_OK(RemoveFile(dir + "/" + name));
  }
  if (::rmdir(dir.c_str()) != 0) {
    return Status::IOError(ErrnoMessage("rmdir", dir));
  }
  return Status::OK();
}

Result<FileLock> FileLock::Acquire(const std::string& path) {
  const int fd = ::open(path.c_str(), O_CREAT | O_RDWR, 0644);
  if (fd < 0) return Status::IOError(ErrnoMessage("open lock file", path));
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    const Status st =
        errno == EWOULDBLOCK
            ? Status::FailedPrecondition(path +
                                         " is locked by another writer")
            : Status::IOError(ErrnoMessage("flock", path));
    ::close(fd);
    return st;
  }
  return FileLock(fd, path);
}

void FileLock::Release() {
  if (fd_ < 0) return;
  ::flock(fd_, LOCK_UN);
  ::close(fd_);
  fd_ = -1;
}

Result<AppendableFile> AppendableFile::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::IOError(ErrnoMessage("open for append", path));
  }
  return AppendableFile(f, path);
}

Status AppendableFile::Append(const char* data, size_t size) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("append to closed file " + path_);
  }
  if (std::fwrite(data, 1, size, file_) != size) {
    return Status::IOError(ErrnoMessage("append", path_));
  }
  return Status::OK();
}

Status AppendableFile::Flush() {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("flush of closed file " + path_);
  }
  if (std::fflush(file_) != 0) {
    return Status::IOError(ErrnoMessage("flush", path_));
  }
  return Status::OK();
}

Status AppendableFile::Sync() {
  RETRASYN_RETURN_NOT_OK(Flush());
  if (::fsync(::fileno(file_)) != 0) {
    return Status::IOError(ErrnoMessage("fsync", path_));
  }
  return Status::OK();
}

Status AppendableFile::SyncData() {
  RETRASYN_RETURN_NOT_OK(Flush());
  if (::fdatasync(::fileno(file_)) != 0) {
    return Status::IOError(ErrnoMessage("fdatasync", path_));
  }
  return Status::OK();
}

int AppendableFile::fd() const {
  return file_ != nullptr ? ::fileno(file_) : -1;
}

Status AppendableFile::Close() {
  if (file_ == nullptr) return Status::OK();
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Status::IOError(ErrnoMessage("close", path_));
  return Status::OK();
}

}  // namespace retrasyn
